"""Pass 2 + lowering: from schedules to runnable translated programs.

``translate`` drives the whole compiler: parse -> recognise -> chain ->
group. The result is a :class:`TranslatedProgram` whose descriptor steps
carry everything needed to emit TDL + parameter files once buffer
addresses are known (pass 2's malloc/free substitution happens here too:
AllocSteps become ``mealib_mem_alloc`` at run time).

``step_profile`` maps any step to its operation profile — used both to
time the *original* program on a host CPU model and to time translated
host-side calls. Keeping one mapping guarantees the baseline and MEALib
run the same operations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union, cast

from repro.compiler.cast import Program
from repro.compiler.cparser import parse_source
from repro.compiler.diagnostics import DiagnosticReport
from repro.compiler.errors import AnalysisRejected
from repro.compiler.passes import (ChainStep, DescriptorStep,
                                   TranslatedSchedule, optimize)
from repro.compiler.recognizer import (AccelCallStep, AllocStep, FreeStep,
                                       HostCallStep, RecognizerError,
                                       Schedule, recognize)
from repro.compiler.semantics import CompileEnv
from repro.mkl.profiles import (OpProfile, axpy_profile, cdotc_profile,
                                cherk_profile, ctrsm_profile, dot_profile,
                                fft_profile, gemv_profile, reshp_profile,
                                resmp_profile, spmv_profile)

#: Fixed host cost per library-call invocation (dispatch, OpenMP
#: scheduling); what makes 16M tiny cdotc calls expensive even on the
#: baseline, and what the LOOP compaction removes on MEALib.
HOST_CALL_OVERHEAD_S = 100e-9


@dataclass
class TranslatedProgram:
    """The compiler's output, ready for the interpreters."""

    source_program: Program
    env: CompileEnv
    schedule: Schedule                 # pre-optimisation (call sites)
    items: List                        # grouped: Alloc/Free/Host/Descriptor
    diagnostics: DiagnosticReport = field(
        default_factory=DiagnosticReport)
    demoted_steps: Tuple[int, ...] = ()
    #: one rewrite-safety certificate per offloaded step (empty when
    #: the checker was skipped with ``analyze=False``)
    certificates: Tuple = ()
    #: the rewrite engine's decision log (empty unless ``translate``
    #: ran with ``rewrite=True``)
    rewrites: Tuple = ()

    def descriptor_count(self) -> int:
        return sum(1 for i in self.items
                   if isinstance(i, DescriptorStep))

    def original_call_count(self) -> int:
        return self.schedule.total_library_calls()


def translate(source: Union[str, Program],
              analyze: bool = True,
              rewrite: bool = False,
              rewrite_config=None) -> TranslatedProgram:
    """Compile C-subset source (or a parsed Program).

    With ``analyze`` (the default) the static safety checker runs
    before lowering: alias/dependence errors (MEA002, MEA005) demote
    the offending accelerated calls to host execution, lifecycle
    errors (use-before-init, use-after-free, double-free, plan
    executed after destroy) raise :class:`AnalysisRejected`, and the
    full report lands on ``TranslatedProgram.diagnostics``.

    With ``rewrite`` the verified rewrite engine
    (:mod:`repro.compiler.rewrite`) runs over the certified schedule:
    fuse/reorder/split, each gated by the dependence provers and
    logged on ``TranslatedProgram.rewrites`` (MEA018/MEA019 also join
    the diagnostics).  The syntactic chainer is then skipped — every
    fusion in a rewritten program carries a machine-checked proof.
    Requires ``analyze=True`` (rewrites only touch certified steps).
    """
    if rewrite and not analyze:
        raise ValueError("rewrite=True requires analyze=True: the "
                         "engine only rewrites certified steps")
    program = (parse_source(source) if isinstance(source, str)
               else source)
    schedule = recognize(program)
    report = DiagnosticReport()
    lowered = schedule
    demoted: List[int] = []
    certificates: Tuple = ()
    rewrites: Tuple = ()
    if analyze:
        from repro.compiler.analysis.certificates import \
            certify_schedule
        from repro.compiler.analysis.rules import (apply_demotions,
                                                   check_program,
                                                   rejection_errors)
        report = check_program(program, schedule)
        rejects = rejection_errors(report)
        if rejects:
            first = rejects[0]
            raise AnalysisRejected(first.message, loc=first.loc,
                                   code=first.code,
                                   buffers=first.buffers)
        lowered, demoted = apply_demotions(schedule, report)
        certificates = certify_schedule(program, lowered,
                                        skip=demoted)
        by_index = {c.step_index: c for c in certificates}
        steps = [dataclasses.replace(s, certificate=by_index[i])
                 if isinstance(s, AccelCallStep) and i in by_index
                 else s
                 for i, s in enumerate(lowered.steps)]
        lowered = Schedule(env=lowered.env, steps=steps)
    if rewrite:
        from repro.compiler.rewrite import rewrite_schedule
        result = rewrite_schedule(program, lowered,
                                  config=rewrite_config)
        lowered = result.schedule
        rewrites = result.decisions
        certificates = result.certificates
        report.extend(d.diagnostic() for d in result.decisions)
        report.sort()
    grouped = optimize(lowered, chain=not rewrite)
    return TranslatedProgram(source_program=program, env=schedule.env,
                             schedule=schedule, items=grouped.items,
                             diagnostics=report,
                             demoted_steps=tuple(demoted),
                             certificates=certificates,
                             rewrites=rewrites)


# -- profiles -----------------------------------------------------------------

def _dim(s: Dict[str, object], key: str) -> int:
    """A scalar from a recognised parameter record, as the int it is.

    ``PrototypeRecord.scalars`` is typed ``Dict[str, object]`` because
    records also carry non-dimension payloads; every *dimension* the
    recognizer stores is an int, which this narrows for the profiles.
    """
    return cast(int, s[key])


def _accel_profile(accel: str, s: Dict[str, object]) -> OpProfile:
    """Profile of one invocation of an accelerator parameter record."""
    if accel == "AXPY":
        return axpy_profile(_dim(s, "n"))
    if accel == "DOT":
        if s.get("dtype", 0):
            return cdotc_profile(_dim(s, "n"))
        return dot_profile(_dim(s, "n"))
    if accel == "GEMV":
        return gemv_profile(_dim(s, "m"), _dim(s, "n"))
    if accel == "SPMV":
        nnz, rows = _dim(s, "nnz"), _dim(s, "rows")
        return OpProfile(
            "SPMV", flops=2.0 * nnz,
            bytes_read=nnz * 16 + (rows + 1) * 8,
            bytes_written=rows * 4, pattern="gather")
    if accel == "RESMP":
        return resmp_profile(_dim(s, "n_in"), _dim(s, "n_out"),
                             _dim(s, "blocks"))
    if accel == "FFT":
        return fft_profile(_dim(s, "n"), _dim(s, "batch"))
    if accel == "RESHP":
        return reshp_profile(_dim(s, "rows"), _dim(s, "cols"),
                             _dim(s, "elem_bytes"))
    raise RecognizerError(f"no profile for accelerator {accel!r}")


def accel_step_profile(step: AccelCallStep, env: CompileEnv) -> OpProfile:
    """Profile of ONE invocation of an accelerated call site."""
    return _accel_profile(step.accel, step.proto.scalars)


def host_step_profile(step: HostCallStep, env: CompileEnv) -> OpProfile:
    """Profile of ONE invocation of a host (compute-bounded) call."""
    if step.demoted:
        # a demoted accelerated call: same operation, host library
        return _accel_profile(step.accel, step.proto.scalars)
    if step.func == "cblas_cherk":
        n = int(env.eval_const(step.args[0]))
        k = int(env.eval_const(step.args[1]))
        return cherk_profile(n, k)
    if step.func in ("cblas_ctrsm_lower", "cblas_ctrsm_upper"):
        n = int(env.eval_const(step.args[0]))
        m = int(env.eval_const(step.args[1]))
        return ctrsm_profile(n, m)
    if step.func == "cpotrf_lower":
        n = int(env.eval_const(step.args[0]))
        return OpProfile("POTRF", flops=4.0 / 3.0 * n ** 3,
                         bytes_read=n * n * 8, bytes_written=n * n * 8,
                         pattern="blocked")
    raise RecognizerError(f"no profile for host call {step.func!r}")


def step_profile(step, env: CompileEnv) -> Tuple[OpProfile, int]:
    """(per-call profile, call count) for any library step."""
    if isinstance(step, AccelCallStep):
        return accel_step_profile(step, env), step.calls
    if isinstance(step, HostCallStep):
        return host_step_profile(step, env), step.calls
    raise TypeError(f"step {step!r} has no profile")
