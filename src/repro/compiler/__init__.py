"""The source-to-source compiler (Section 3.4) and its interpreters."""

from repro.compiler.affine import Affine, AffineError
from repro.compiler.cast import (CParseError, FuncDef, Param, Program,
                                 walk_calls)
from repro.compiler.cparser import parse_source
from repro.compiler.inline import inline_body, substitute_expr
from repro.compiler.diagnostics import (Diagnostic, DiagnosticReport,
                                        Severity, SourceLoc)
from repro.compiler.errors import AnalysisRejected, CompilerError
from repro.compiler.interp import (ArrayRef, InterpError, RunOutcome,
                                   run_original, run_translated)
from repro.compiler.passes import (ChainStep, DescriptorStep, chain_pass,
                                   group_descriptors, optimize)
from repro.compiler.recognizer import (AccelCallStep, AllocStep, FreeStep,
                                       HostCallStep, ParamsProto,
                                       PlanDestroyStep, RecognizerError,
                                       Schedule, recognize)
from repro.compiler.rewrite import (FusedStep, RewriteConfig,
                                    RewriteDecision, RewriteResult,
                                    rewrite_schedule)
from repro.compiler.semantics import (BufferInfo, CompileEnv, PlanSpec,
                                      SemanticError, build_env)
from repro.compiler.translate import (HOST_CALL_OVERHEAD_S,
                                      TranslatedProgram, step_profile,
                                      translate)

__all__ = [
    "Affine", "AffineError", "CParseError", "FuncDef", "Param",
    "Program", "walk_calls", "parse_source", "inline_body",
    "substitute_expr", "Diagnostic", "DiagnosticReport", "Severity",
    "SourceLoc", "AnalysisRejected", "CompilerError", "ArrayRef",
    "InterpError", "RunOutcome", "run_original", "run_translated",
    "ChainStep", "DescriptorStep", "chain_pass", "group_descriptors",
    "optimize", "AccelCallStep", "AllocStep", "FreeStep",
    "HostCallStep", "ParamsProto", "PlanDestroyStep",
    "RecognizerError", "Schedule", "recognize", "BufferInfo",
    "CompileEnv", "PlanSpec", "SemanticError", "build_env",
    "HOST_CALL_OVERHEAD_S", "TranslatedProgram", "step_profile",
    "translate", "FusedStep", "RewriteConfig", "RewriteDecision",
    "RewriteResult", "rewrite_schedule",
]
