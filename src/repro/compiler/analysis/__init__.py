"""Static dataflow-analysis framework for the source-to-source compiler.

Proves offload *safety* before any call is redirected to the in-DRAM
accelerators. The pipeline is::

    C AST ──► call graph (recursion detection, bottom-up order)
          ──► per-function effect summaries (intervals, lifecycle,
              escapes) consumed at call sites — never re-analysed
          ──► CFG (basic blocks, loop nests)
          ──► dataflow (reaching lifecycle events, buffer liveness)
          ──► value-range analysis (interval lattice with widening at
              loop headers, narrowing on branch conditions)
          ──► symbolic affine dependence tester (constant-distance,
              mixed-radix, interval-bounds, GCD, Banerjee) with
              bounded enumeration only as a flagged fallback
          ──► loop-carried-dependence + OpenMP race detection
          ──► static footprint bounds (provable / possible OOB)
          ──► rule engine ──► Diagnostics (MEA001..MEA017)
          ──► rewrite-safety certificates for every offloaded step

``error`` findings on accelerated call sites demote the call to host
execution (``HostCallStep``) instead of producing a wrong offload;
lifecycle errors (use-after-free, double-free, ... — including their
interprocedural form MEA012) and provable out-of-bounds footprints
(MEA015) reject the program. MEA016 (possible OOB) is the one warning
that demotes.
"""

from repro.compiler.analysis.alias import (FieldAccess, READ_FIELDS,
                                           WRITE_FIELDS, cross_iteration,
                                           same_iteration, step_accesses,
                                           step_ranges)
from repro.compiler.analysis.callgraph import (MAIN, CallGraph,
                                               build_call_graph)
from repro.compiler.analysis.certificates import (CertFact,
                                                  SafetyCertificate,
                                                  certify_schedule,
                                                  certify_step)
from repro.compiler.analysis.cfg import BasicBlock, Cfg, build_cfg
from repro.compiler.analysis.dataflow import (LifecycleFacts, Liveness,
                                              solve_backward,
                                              solve_forward)
from repro.compiler.analysis.deptest import (DepVerdict,
                                             cross_iteration_verdict,
                                             same_iteration_verdict)
from repro.compiler.analysis.events import BufferEvent, stmt_events
from repro.compiler.analysis.races import classify_races
from repro.compiler.analysis.ranges import (Interval, ValueRanges,
                                            affine_interval)
from repro.compiler.analysis.rules import (AnalysisResult, DEMOTE_CODES,
                                           REJECT_CODES,
                                           WARN_DEMOTE_CODES,
                                           analyze_source,
                                           apply_demotions,
                                           check_program)
from repro.compiler.analysis.summaries import (FunctionSummary,
                                               IntervalEffect,
                                               SummaryEvent,
                                               compute_summaries)
from repro.compiler.diagnostics import (Diagnostic, DiagnosticReport,
                                        Severity, SourceLoc)

__all__ = [
    "FieldAccess", "READ_FIELDS", "WRITE_FIELDS", "step_accesses",
    "step_ranges", "same_iteration", "cross_iteration",
    "MAIN", "CallGraph", "build_call_graph",
    "CertFact", "SafetyCertificate", "certify_schedule", "certify_step",
    "BasicBlock", "Cfg", "build_cfg", "LifecycleFacts", "Liveness",
    "solve_backward", "solve_forward",
    "DepVerdict", "same_iteration_verdict", "cross_iteration_verdict",
    "BufferEvent", "stmt_events",
    "classify_races", "Interval", "ValueRanges", "affine_interval",
    "AnalysisResult", "DEMOTE_CODES", "REJECT_CODES",
    "WARN_DEMOTE_CODES",
    "analyze_source", "apply_demotions", "check_program",
    "FunctionSummary", "IntervalEffect", "SummaryEvent",
    "compute_summaries", "Diagnostic", "DiagnosticReport", "Severity",
    "SourceLoc",
]
