"""Static dataflow-analysis framework for the source-to-source compiler.

Proves offload *safety* before any call is redirected to the in-DRAM
accelerators. The pipeline is::

    C AST ──► CFG (basic blocks, loop nests)
          ──► dataflow (reaching lifecycle events, buffer liveness)
          ──► alias / overlap analysis over call arguments
          ──► loop-carried-dependence check for OpenMP collapse
          ──► rule engine ──► Diagnostics (MEA001..MEA007)

``error`` findings on accelerated call sites demote the call to host
execution (``HostCallStep``) instead of producing a wrong offload;
lifecycle errors (use-after-free, double-free, ...) reject the program.
"""

from repro.compiler.analysis.alias import (FieldAccess, READ_FIELDS,
                                           WRITE_FIELDS, step_accesses)
from repro.compiler.analysis.cfg import BasicBlock, Cfg, build_cfg
from repro.compiler.analysis.dataflow import (LifecycleFacts, Liveness,
                                              solve_backward,
                                              solve_forward)
from repro.compiler.analysis.events import BufferEvent, stmt_events
from repro.compiler.analysis.rules import (AnalysisResult, DEMOTE_CODES,
                                           REJECT_CODES, analyze_source,
                                           apply_demotions,
                                           check_program)
from repro.compiler.diagnostics import (Diagnostic, DiagnosticReport,
                                        Severity, SourceLoc)

__all__ = [
    "FieldAccess", "READ_FIELDS", "WRITE_FIELDS", "step_accesses",
    "BasicBlock", "Cfg", "build_cfg", "LifecycleFacts", "Liveness",
    "solve_backward", "solve_forward", "BufferEvent", "stmt_events",
    "AnalysisResult", "DEMOTE_CODES", "REJECT_CODES", "analyze_source",
    "apply_demotions", "check_program", "Diagnostic",
    "DiagnosticReport", "Severity", "SourceLoc",
]
