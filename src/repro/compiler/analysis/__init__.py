"""Static dataflow-analysis framework for the source-to-source compiler.

Proves offload *safety* before any call is redirected to the in-DRAM
accelerators. The pipeline is::

    C AST ──► call graph (recursion detection, bottom-up order)
          ──► per-function effect summaries (intervals, lifecycle,
              escapes) consumed at call sites — never re-analysed
          ──► CFG (basic blocks, loop nests)
          ──► dataflow (reaching lifecycle events, buffer liveness)
          ──► alias / overlap analysis over call arguments
          ──► loop-carried-dependence + OpenMP race detection
          ──► rule engine ──► Diagnostics (MEA001..MEA012)

``error`` findings on accelerated call sites demote the call to host
execution (``HostCallStep``) instead of producing a wrong offload;
lifecycle errors (use-after-free, double-free, ... — including their
interprocedural form MEA012) reject the program.
"""

from repro.compiler.analysis.alias import (FieldAccess, READ_FIELDS,
                                           WRITE_FIELDS, step_accesses)
from repro.compiler.analysis.callgraph import (MAIN, CallGraph,
                                               build_call_graph)
from repro.compiler.analysis.cfg import BasicBlock, Cfg, build_cfg
from repro.compiler.analysis.dataflow import (LifecycleFacts, Liveness,
                                              solve_backward,
                                              solve_forward)
from repro.compiler.analysis.events import BufferEvent, stmt_events
from repro.compiler.analysis.races import classify_races
from repro.compiler.analysis.rules import (AnalysisResult, DEMOTE_CODES,
                                           REJECT_CODES, analyze_source,
                                           apply_demotions,
                                           check_program)
from repro.compiler.analysis.summaries import (FunctionSummary,
                                               IntervalEffect,
                                               SummaryEvent,
                                               compute_summaries)
from repro.compiler.diagnostics import (Diagnostic, DiagnosticReport,
                                        Severity, SourceLoc)

__all__ = [
    "FieldAccess", "READ_FIELDS", "WRITE_FIELDS", "step_accesses",
    "MAIN", "CallGraph", "build_call_graph",
    "BasicBlock", "Cfg", "build_cfg", "LifecycleFacts", "Liveness",
    "solve_backward", "solve_forward", "BufferEvent", "stmt_events",
    "classify_races", "AnalysisResult", "DEMOTE_CODES", "REJECT_CODES",
    "analyze_source", "apply_demotions", "check_program",
    "FunctionSummary", "IntervalEffect", "SummaryEvent",
    "compute_summaries", "Diagnostic", "DiagnosticReport", "Severity",
    "SourceLoc",
]
