"""Integer value-range (interval) analysis over the CFG.

The dependence tester and the static bounds checker both need to know,
for every scalar that can appear in an affine address expression, the
interval of values it can take. This module computes those intervals
with a classic abstract-interpretation pass over the existing CFG:

* the lattice is integer intervals with open ends (``None`` = ±inf);
* loop headers apply **widening** after a fixed number of ascending
  rounds so non-constant bounds still terminate, followed by a
  **narrowing** (descending) phase that recovers precision;
* edges out of a loop header **narrow on the branch condition**: the
  body edge meets the loop variable with ``[start, bound-1]`` (the
  ``var < bound`` guard holds), the exit edge with ``[bound, +inf)``
  (the guard failed).

For the canonical counted loops of this C subset the result is exact:
inside the body the loop variable is ``[start, bound-1]``, after the
loop it is ``[bound, bound]``. Variables the pass cannot bound (a
runtime ``int`` with no constant initialiser) stay ``TOP`` — callers
must treat their address expressions as possibly out of bounds
(MEA016) and the dependence tester refuses to enumerate over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compiler.affine import Affine, AffineError
from repro.compiler.analysis.cfg import BasicBlock, Cfg
from repro.compiler.cast import Expr, For, VarDecl
from repro.compiler.semantics import CompileEnv, SemanticError

#: Ascending rounds before widening kicks in at loop headers.
_WIDEN_AFTER = 2
#: Descending (narrowing) rounds after the widened fixpoint.
_NARROW_ROUNDS = 2


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` bounds are infinite.

    ``lo > hi`` (both finite) encodes the empty interval (an
    infeasible edge).
    """

    lo: Optional[int] = None
    hi: Optional[int] = None

    # -- predicates ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return (self.lo is not None and self.hi is not None
                and self.lo > self.hi)

    @property
    def is_bounded(self) -> bool:
        return self.lo is not None and self.hi is not None \
            and not self.is_empty

    @property
    def is_point(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, value: int) -> bool:
        if self.is_empty:
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def width(self) -> Optional[int]:
        """Number of integers covered (None if unbounded)."""
        if self.is_empty:
            return 0
        if self.lo is None or self.hi is None:
            return None
        return self.hi - self.lo + 1

    # -- constructors --------------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        return TOP

    @staticmethod
    def point(value: int) -> "Interval":
        return Interval(int(value), int(value))

    @staticmethod
    def bounded(lo: int, hi: int) -> "Interval":
        return Interval(int(lo), int(hi))

    # -- arithmetic ----------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY
        lo = (None if self.lo is None or other.lo is None
              else self.lo + other.lo)
        hi = (None if self.hi is None or other.hi is None
              else self.hi + other.hi)
        return Interval(lo, hi)

    def shift(self, delta: int) -> "Interval":
        if self.is_empty:
            return EMPTY
        return Interval(None if self.lo is None else self.lo + delta,
                        None if self.hi is None else self.hi + delta)

    def neg(self) -> "Interval":
        if self.is_empty:
            return EMPTY
        return Interval(None if self.hi is None else -self.hi,
                        None if self.lo is None else -self.lo)

    def scale(self, factor: int) -> "Interval":
        """Multiply by an integer constant."""
        if self.is_empty:
            return EMPTY
        if factor == 0:
            return Interval.point(0)
        if factor < 0:
            return self.neg().scale(-factor)
        return Interval(None if self.lo is None else self.lo * factor,
                        None if self.hi is None else self.hi * factor)

    # -- lattice -------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo = (None if self.lo is None or other.lo is None
              else min(self.lo, other.lo))
        hi = (None if self.hi is None or other.hi is None
              else max(self.hi, other.hi))
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY
        if self.lo is None:
            lo = other.lo
        elif other.lo is None:
            lo = self.lo
        else:
            lo = max(self.lo, other.lo)
        if self.hi is None:
            hi = other.hi
        elif other.hi is None:
            hi = self.hi
        else:
            hi = min(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Standard interval widening: escaping bounds jump to ±inf."""
        if self.is_empty:
            return newer
        if newer.is_empty:
            return self
        lo = self.lo if (self.lo is not None and newer.lo is not None
                         and newer.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and newer.hi is not None
                         and newer.hi <= self.hi) else None
        return Interval(lo, hi)

    def __str__(self) -> str:
        if self.is_empty:
            return "[empty]"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


TOP = Interval(None, None)
EMPTY = Interval(0, -1)

#: An abstract store: variables absent from the mapping are TOP.
State = Dict[str, Interval]


def affine_interval(aff: Affine,
                    ranges: Mapping[str, Interval]) -> Interval:
    """Interval of an affine expression under per-variable ranges."""
    total = Interval.point(aff.const)
    for var, coef in aff.coefs.items():
        if not coef:
            continue
        r = ranges.get(var, TOP)
        total = total.add(r.scale(coef))
        if total.is_empty:
            return EMPTY
    return total


def ranges_from_trips(trips_by_var: Mapping[str, int]) -> Dict[str, Interval]:
    """The iteration box of a collapsed loop nest: each var in [0, T-1]."""
    return {v: Interval.bounded(0, t - 1)
            for v, t in trips_by_var.items()}


class ValueRanges:
    """Per-block variable ranges derived by forward interval dataflow.

    ``block_in[bid]`` holds the abstract store at block entry after the
    widening + narrowing fixpoint. ``global_range(var)`` is the join of
    the variable's range over every reachable block — the conservative
    answer for program points the caller cannot place (inlined loop
    bodies, collapsed steps).
    """

    def __init__(self, cfg: Cfg, env: CompileEnv):
        self.cfg = cfg
        self.env = env
        self.block_in: Dict[int, State] = {}
        self._solve()

    # -- queries -------------------------------------------------------------

    def at_entry(self, bid: int) -> State:
        return dict(self.block_in.get(bid, {}))

    def var_at(self, bid: int, var: str) -> Interval:
        return self.block_in.get(bid, {}).get(var, TOP)

    def global_range(self, var: str) -> Interval:
        if var in self.env.constants:
            return Interval.point(self.env.constants[var])
        out: Optional[Interval] = None
        for state in self.block_in.values():
            r = state.get(var, TOP)
            out = r if out is None else out.join(r)
            if out == TOP:
                return TOP
        return TOP if out is None else out

    def trip_interval(self, header_bid: int) -> Interval:
        """Derived trip-count interval of the loop at ``header_bid``."""
        blk = self.cfg.block(header_bid)
        if blk.kind != "header" or blk.loop is None:
            raise ValueError(f"block {header_bid} is not a loop header")
        state = self.block_in.get(header_bid, {})
        bound = self._expr_interval(blk.loop.bound, state)
        start = self._expr_interval(blk.loop.start, state)
        trips = bound.add(start.neg())
        # a canonical counted loop runs at least zero iterations
        return trips.meet(Interval(0, None))

    # -- the solver ----------------------------------------------------------

    def _expr_interval(self, expr: Expr, state: State) -> Interval:
        try:
            aff = self.env.affine_expr(expr)
        except (AffineError, SemanticError):
            return TOP
        return affine_interval(aff, state)

    def _transfer(self, blk: BasicBlock, state: State) -> State:
        out = dict(state)
        for stmt in blk.stmts:
            if isinstance(stmt, VarDecl) and not stmt.pointer \
                    and not stmt.dims \
                    and stmt.ctype in ("int", "long", "size_t"):
                if stmt.name in self.env.constants:
                    out[stmt.name] = Interval.point(
                        self.env.constants[stmt.name])
                elif stmt.init is not None:
                    out[stmt.name] = self._expr_interval(stmt.init, out)
                else:
                    out[stmt.name] = TOP
        return out

    def _is_back_edge(self, pred: BasicBlock, header: BasicBlock) -> bool:
        loop = header.loop
        return loop is not None and loop.var in pred.loop_vars

    def _edge_state(self, pred: BasicBlock, dst: BasicBlock,
                    out_state: State) -> Optional[State]:
        """Abstract store flowing along one CFG edge (None = infeasible).

        This is where branch-condition narrowing lives: the loop guard
        ``var < bound`` holds on the header->body edge and fails on the
        header->exit edge.
        """
        state = dict(out_state)
        if pred.kind == "header" and pred.loop is not None:
            loop = pred.loop
            var = loop.var
            bound = self._expr_interval(loop.bound, out_state)
            start = self._expr_interval(loop.start, out_state)
            current = state.get(var, TOP)
            into_body = (loop.var not in pred.loop_vars
                         and var in dst.loop_vars)
            if into_body:
                guard = Interval(
                    start.lo,
                    None if bound.hi is None else bound.hi - 1)
                narrowed = current.meet(guard)
                if narrowed.is_empty:
                    return None
                state[var] = narrowed
            else:
                # the guard failed: var has reached the bound
                narrowed = current.meet(Interval(bound.lo, None))
                if narrowed.is_empty:
                    return None
                state[var] = narrowed
        if dst.kind == "header" and dst.loop is not None:
            loop = dst.loop
            if self._is_back_edge(pred, dst):
                # model the implicit `var += step` of the back edge
                state[loop.var] = state.get(loop.var, TOP).shift(
                    loop.step)
            else:
                state[loop.var] = self._expr_interval(loop.start,
                                                      out_state)
        return state

    @staticmethod
    def _join_states(states: Sequence[State]) -> State:
        if not states:
            return {}
        keys = set(states[0])
        for s in states[1:]:
            keys &= set(s)          # a var missing anywhere is TOP
        out: State = {}
        for k in keys:
            r = states[0][k]
            for s in states[1:]:
                r = r.join(s[k])
            out[k] = r
        return out

    @staticmethod
    def _widen_state(old: State, new: State) -> State:
        out: State = {}
        for k, r in new.items():
            prev = old.get(k)
            out[k] = r if prev is None else prev.widen(r)
        return out

    def _solve(self) -> None:
        cfg = self.cfg
        order = cfg.rpo()
        block_out: Dict[int, State] = {}
        self.block_in = {cfg.entry: {}}
        block_out[cfg.entry] = self._transfer(cfg.block(cfg.entry), {})
        rounds = 0
        changed = True
        while changed:
            changed = False
            rounds += 1
            for bid in order:
                if bid == cfg.entry:
                    continue
                blk = cfg.block(bid)
                incoming: List[State] = []
                for p in blk.preds:
                    if p not in block_out:
                        continue
                    es = self._edge_state(cfg.block(p), blk,
                                          block_out[p])
                    if es is not None:
                        incoming.append(es)
                merged = self._join_states(incoming)
                if blk.kind == "header" and rounds > _WIDEN_AFTER \
                        and bid in self.block_in:
                    merged = self._widen_state(self.block_in[bid],
                                               merged)
                new_out = self._transfer(blk, merged)
                if merged != self.block_in.get(bid) \
                        or new_out != block_out.get(bid):
                    self.block_in[bid] = merged
                    block_out[bid] = new_out
                    changed = True
        # descending (narrowing) rounds: recompute without widening so
        # bounds pushed to infinity by widening tighten back where the
        # guard conditions justify it
        for _ in range(_NARROW_ROUNDS):
            for bid in order:
                if bid == cfg.entry:
                    continue
                blk = cfg.block(bid)
                incoming = []
                for p in blk.preds:
                    if p not in block_out:
                        continue
                    es = self._edge_state(cfg.block(p), blk,
                                          block_out[p])
                    if es is not None:
                        incoming.append(es)
                merged = self._join_states(incoming)
                self.block_in[bid] = merged
                block_out[bid] = self._transfer(blk, merged)


def loop_headers(cfg: Cfg) -> List[Tuple[int, For]]:
    """(bid, For) for every loop header, in RPO."""
    return [(bid, blk.loop) for bid in cfg.rpo()
            for blk in (cfg.block(bid),)
            if blk.kind == "header" and blk.loop is not None]


def step_var_ranges(loop_vars: Sequence[str], trips: Sequence[int],
                    offset_vars: Sequence[str],
                    vranges: Optional[ValueRanges] = None
                    ) -> Dict[str, Interval]:
    """Ranges for one collapsed accelerated step.

    Collapsed loop variables get their exact iteration box; any other
    variable in the address expression falls back to the CFG-derived
    global range (TOP when the dataflow could not bound it).
    """
    out: Dict[str, Interval] = {
        v: Interval.bounded(0, t - 1)
        for v, t in zip(loop_vars, trips)}
    for var in offset_vars:
        if var not in out:
            out[var] = (vranges.global_range(var) if vranges is not None
                        else TOP)
    return out
