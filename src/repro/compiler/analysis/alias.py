"""Alias and overlap analysis over accelerated-call address fields.

Every accelerated call carries a :class:`ParamsProto` whose address
fields are affine byte offsets in the enclosing loop variables. This
module turns each field into a byte *interval* ``[offset, offset +
extent)`` and answers two questions:

* within one invocation, do a written field and another field of the
  same buffer overlap (in-place aliasing, MEA002)?
* across two different iterations of the collapsed loop nest, can a
  written interval touch an interval of the same buffer (loop-carried
  dependence, MEA005)?

The actual proving lives in :mod:`repro.compiler.analysis.deptest`:
symbolic tests (constant distance, mixed-radix, value-range bounds,
GCD lattices, Banerjee direction vectors) run first and bounded
enumeration is only a flagged fallback. This module supplies the
footprints (field -> buffer, affine offset, byte extent) and the
per-step variable ranges the tester consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.compiler.affine import Affine
from repro.compiler.analysis.deptest import (DepVerdict,
                                             cross_iteration_verdict,
                                             same_iteration_verdict)
from repro.compiler.analysis.ranges import TOP, Interval, ValueRanges
from repro.compiler.semantics import CompileEnv

#: Address fields each accelerator writes / reads.
WRITE_FIELDS = {
    "AXPY": ("y_pa",),
    "DOT": ("out_pa",),
    "GEMV": ("y_pa",),
    "SPMV": ("y_pa",),
    "RESMP": ("out_pa",),
    "FFT": ("dst_pa",),
    "RESHP": ("dst_pa",),
}
READ_FIELDS = {
    "AXPY": ("x_pa", "y_pa"),
    "DOT": ("x_pa", "y_pa"),
    "GEMV": ("a_pa", "x_pa", "y_pa"),
    "SPMV": ("indptr_pa", "indices_pa", "data_pa", "x_pa"),
    "RESMP": ("knots_pa", "in_pa", "sites_pa"),
    "FFT": ("src_pa",),
    "RESHP": ("src_pa",),
}

#: Accelerators whose semantics permit *exactly* coincident source and
#: destination (an in-place transform): the paper's RESHP handles
#: in-place transposes (mkl_simatcopy) and FFTW supports in-place
#: plans. Everything else reading and writing the same bytes is UB.
INPLACE_EXACT_OK = {"RESHP", "FFT"}


@dataclass(frozen=True)
class FieldAccess:
    """One address field of an accelerated call, as a byte interval."""

    field: str
    buffer: str
    offset: Affine               # byte offset in loop variables
    extent: int                  # bytes touched per invocation
    writes: bool
    reads: bool


def _elem(env: CompileEnv, buf: str) -> int:
    return env.buffers[buf].elem_size


def _dot_span(n: int, inc: int, elem: int) -> int:
    if n <= 0:
        return 0
    return ((n - 1) * abs(int(inc)) + 1) * elem


def field_extents(accel: str, scalars: Dict[str, Any],
                  buffers: Dict[str, str],
                  env: CompileEnv) -> Dict[str, int]:
    """Bytes each address field touches in a single invocation.

    ``buffers`` maps field name to buffer name (element sizes come
    from the environment).
    """
    e = {f: _elem(env, b) for f, b in buffers.items()}
    if accel == "AXPY":
        n = int(scalars["n"])
        return {"x_pa": n * e["x_pa"], "y_pa": n * e["y_pa"]}
    if accel == "DOT":
        n = int(scalars["n"])
        return {"x_pa": _dot_span(n, scalars["incx"], e["x_pa"]),
                "y_pa": _dot_span(n, scalars["incy"], e["y_pa"]),
                "out_pa": e["out_pa"]}
    if accel == "GEMV":
        m, n = int(scalars["m"]), int(scalars["n"])
        return {"a_pa": m * n * e["a_pa"], "x_pa": n * e["x_pa"],
                "y_pa": m * e["y_pa"]}
    if accel == "SPMV":
        rows, cols = int(scalars["rows"]), int(scalars["cols"])
        nnz = int(scalars["nnz"])
        return {"indptr_pa": (rows + 1) * e["indptr_pa"],
                "indices_pa": nnz * e["indices_pa"],
                "data_pa": nnz * e["data_pa"],
                "x_pa": cols * e["x_pa"], "y_pa": rows * e["y_pa"]}
    if accel == "RESMP":
        blocks = int(scalars["blocks"])
        n_in, n_out = int(scalars["n_in"]), int(scalars["n_out"])
        return {"knots_pa": n_in * e["knots_pa"],
                "in_pa": blocks * n_in * e["in_pa"],
                "sites_pa": blocks * n_out * e["sites_pa"],
                "out_pa": blocks * n_out * e["out_pa"]}
    if accel == "FFT":
        count = int(scalars["n"]) * int(scalars["batch"])
        return {"src_pa": count * e["src_pa"],
                "dst_pa": count * e["dst_pa"]}
    if accel == "RESHP":
        span = (int(scalars["rows"]) * int(scalars["cols"])
                * int(scalars["elem_bytes"]))
        return {"src_pa": span, "dst_pa": span}
    raise ValueError(f"unknown accelerator {accel!r}")


def step_accesses(step, env: CompileEnv) -> List[FieldAccess]:
    """The address fields of an AccelCallStep as FieldAccess records."""
    buffers = {f: b for f, (b, _) in step.proto.addrs.items()}
    extents = field_extents(step.accel, step.proto.scalars, buffers,
                            env)
    writes = set(WRITE_FIELDS[step.accel])
    reads = set(READ_FIELDS[step.accel])
    out = []
    for fld, (buf, offset) in step.proto.addrs.items():
        out.append(FieldAccess(
            field=fld, buffer=buf, offset=offset,
            extent=int(extents.get(fld, 0)),
            writes=fld in writes, reads=fld in reads))
    return out


def step_ranges(step, vranges: Optional[ValueRanges] = None
                ) -> Tuple[Dict[str, Interval], Dict[str, Interval]]:
    """(loop ranges, invariant ranges) for one accelerated step.

    Loop variables of the collapsed nest get their exact iteration box
    ``[0, trips-1]``; every other symbol appearing in an address
    expression is iteration-invariant and takes its CFG-derived global
    range (unbounded when no :class:`ValueRanges` is supplied or the
    dataflow could not bound it).
    """
    loop_ranges: Dict[str, Interval] = {
        v: Interval.bounded(0, t - 1)
        for v, t in zip(step.loop_vars, step.trips)}
    invariant: Dict[str, Interval] = {}
    for _, (_, offset) in step.proto.addrs.items():
        for var, coef in offset.coefs.items():
            if coef and var not in loop_ranges \
                    and var not in invariant:
                invariant[var] = (vranges.global_range(var)
                                  if vranges is not None else TOP)
    return loop_ranges, invariant


# -- verdict adapters ---------------------------------------------------------

def same_iteration(a: FieldAccess, b: FieldAccess,
                   loop_ranges: Dict[str, Interval],
                   invariant: Optional[Dict[str, Interval]] = None
                   ) -> DepVerdict:
    """Full verdict for two fields within one invocation."""
    ranges = {**(invariant or {}), **loop_ranges}
    return same_iteration_verdict(a.offset, a.extent,
                                  b.offset, b.extent, ranges)


def cross_iteration(w: FieldAccess, f: FieldAccess,
                    loop_ranges: Dict[str, Interval],
                    invariant: Optional[Dict[str, Interval]] = None
                    ) -> DepVerdict:
    """Full verdict for ``w`` vs ``f`` across distinct iterations."""
    return cross_iteration_verdict(w.offset, w.extent,
                                   f.offset, f.extent,
                                   loop_ranges, invariant or {})


def _trip_ranges(trips_by_var: Dict[str, int]) -> Dict[str, Interval]:
    return {v: Interval.bounded(0, t - 1)
            for v, t in trips_by_var.items()}


def same_iteration_relation(a: FieldAccess, b: FieldAccess,
                            trips_by_var: Dict[str, int]) -> str:
    """Relation of two fields within one invocation.

    Returns ``"disjoint"``, ``"exact"`` (identical interval),
    ``"overlap"``, or ``"unknown"``.
    """
    return same_iteration(a, b, _trip_ranges(trips_by_var)).relation


def cross_iteration_overlap(w: FieldAccess, f: FieldAccess,
                            trips_by_var: Dict[str, int]) -> str:
    """Can ``w`` in one iteration touch ``f`` in a *different* one?

    Returns ``"disjoint"``, ``"overlap"``, or ``"unknown"``. Callers
    must treat ``unknown`` conservatively (assume a dependence).
    """
    return cross_iteration(w, f, _trip_ranges(trips_by_var)).relation
