"""Alias and overlap analysis over accelerated-call address fields.

Every accelerated call carries a :class:`ParamsProto` whose address
fields are affine byte offsets in the enclosing loop variables. This
module turns each field into a byte *interval* ``[offset, offset +
extent)`` and answers two questions:

* within one invocation, do a written field and another field of the
  same buffer overlap (in-place aliasing, MEA002)?
* across two different iterations of the collapsed loop nest, can a
  written interval touch an interval of the same buffer (loop-carried
  dependence, MEA005)?

Disjointness across iterations is proved with a mixed-radix argument:
sort the loop variables by |stride|; if each stride covers the whole
span accumulated so far, distinct iteration vectors map to disjoint
intervals. When the proof does not apply, small iteration spaces are
enumerated exactly; otherwise the answer is ``unknown`` and the caller
must be conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Dict, List, Optional, Tuple

from repro.compiler.affine import Affine
from repro.compiler.semantics import CompileEnv

#: Address fields each accelerator writes / reads.
WRITE_FIELDS = {
    "AXPY": ("y_pa",),
    "DOT": ("out_pa",),
    "GEMV": ("y_pa",),
    "SPMV": ("y_pa",),
    "RESMP": ("out_pa",),
    "FFT": ("dst_pa",),
    "RESHP": ("dst_pa",),
}
READ_FIELDS = {
    "AXPY": ("x_pa", "y_pa"),
    "DOT": ("x_pa", "y_pa"),
    "GEMV": ("a_pa", "x_pa", "y_pa"),
    "SPMV": ("indptr_pa", "indices_pa", "data_pa", "x_pa"),
    "RESMP": ("knots_pa", "in_pa", "sites_pa"),
    "FFT": ("src_pa",),
    "RESHP": ("src_pa",),
}

#: Accelerators whose semantics permit *exactly* coincident source and
#: destination (an in-place transform): the paper's RESHP handles
#: in-place transposes (mkl_simatcopy) and FFTW supports in-place
#: plans. Everything else reading and writing the same bytes is UB.
INPLACE_EXACT_OK = {"RESHP", "FFT"}

#: Enumeration budgets before falling back to interval bounds.
_MAX_POINTS = 4096          # full iteration-space sweeps
_MAX_DELTAS = 30000         # iteration-difference sweeps


@dataclass(frozen=True)
class FieldAccess:
    """One address field of an accelerated call, as a byte interval."""

    field: str
    buffer: str
    offset: Affine               # byte offset in loop variables
    extent: int                  # bytes touched per invocation
    writes: bool
    reads: bool


def _elem(env: CompileEnv, buf: str) -> int:
    return env.buffers[buf].elem_size


def _dot_span(n: int, inc: int, elem: int) -> int:
    if n <= 0:
        return 0
    return ((n - 1) * abs(int(inc)) + 1) * elem


def field_extents(accel: str, scalars: Dict[str, Any],
                  buffers: Dict[str, str],
                  env: CompileEnv) -> Dict[str, int]:
    """Bytes each address field touches in a single invocation.

    ``buffers`` maps field name to buffer name (element sizes come
    from the environment).
    """
    e = {f: _elem(env, b) for f, b in buffers.items()}
    if accel == "AXPY":
        n = int(scalars["n"])
        return {"x_pa": n * e["x_pa"], "y_pa": n * e["y_pa"]}
    if accel == "DOT":
        n = int(scalars["n"])
        return {"x_pa": _dot_span(n, scalars["incx"], e["x_pa"]),
                "y_pa": _dot_span(n, scalars["incy"], e["y_pa"]),
                "out_pa": e["out_pa"]}
    if accel == "GEMV":
        m, n = int(scalars["m"]), int(scalars["n"])
        return {"a_pa": m * n * e["a_pa"], "x_pa": n * e["x_pa"],
                "y_pa": m * e["y_pa"]}
    if accel == "SPMV":
        rows, cols = int(scalars["rows"]), int(scalars["cols"])
        nnz = int(scalars["nnz"])
        return {"indptr_pa": (rows + 1) * e["indptr_pa"],
                "indices_pa": nnz * e["indices_pa"],
                "data_pa": nnz * e["data_pa"],
                "x_pa": cols * e["x_pa"], "y_pa": rows * e["y_pa"]}
    if accel == "RESMP":
        blocks = int(scalars["blocks"])
        n_in, n_out = int(scalars["n_in"]), int(scalars["n_out"])
        return {"knots_pa": n_in * e["knots_pa"],
                "in_pa": blocks * n_in * e["in_pa"],
                "sites_pa": blocks * n_out * e["sites_pa"],
                "out_pa": blocks * n_out * e["out_pa"]}
    if accel == "FFT":
        count = int(scalars["n"]) * int(scalars["batch"])
        return {"src_pa": count * e["src_pa"],
                "dst_pa": count * e["dst_pa"]}
    if accel == "RESHP":
        span = (int(scalars["rows"]) * int(scalars["cols"])
                * int(scalars["elem_bytes"]))
        return {"src_pa": span, "dst_pa": span}
    raise ValueError(f"unknown accelerator {accel!r}")


def step_accesses(step, env: CompileEnv) -> List[FieldAccess]:
    """The address fields of an AccelCallStep as FieldAccess records."""
    buffers = {f: b for f, (b, _) in step.proto.addrs.items()}
    extents = field_extents(step.accel, step.proto.scalars, buffers,
                            env)
    writes = set(WRITE_FIELDS[step.accel])
    reads = set(READ_FIELDS[step.accel])
    out = []
    for fld, (buf, offset) in step.proto.addrs.items():
        out.append(FieldAccess(
            field=fld, buffer=buf, offset=offset,
            extent=int(extents.get(fld, 0)),
            writes=fld in writes, reads=fld in reads))
    return out


# -- interval machinery ------------------------------------------------------

def _intervals_overlap(a_start: int, a_len: int,
                       b_start: int, b_len: int) -> bool:
    if a_len <= 0 or b_len <= 0:
        return False
    return a_start < b_start + b_len and b_start < a_start + a_len


def _affine_range(aff: Affine,
                  trips_by_var: Dict[str, int]
                  ) -> Optional[Tuple[int, int]]:
    """Min/max of the affine over the iteration box (None if unbound)."""
    lo = hi = aff.const
    for var, coef in aff.coefs.items():
        if not coef:
            continue
        if var not in trips_by_var:
            return None
        span = coef * (trips_by_var[var] - 1)
        if span > 0:
            hi += span
        else:
            lo += span
    return lo, hi


def _iteration_points(trips_by_var: Dict[str, int]):
    names = list(trips_by_var)
    for values in product(*(range(trips_by_var[v]) for v in names)):
        yield dict(zip(names, values))


def _space_size(trips_by_var: Dict[str, int]) -> int:
    total = 1
    for t in trips_by_var.values():
        total *= t
    return total


def same_iteration_relation(a: FieldAccess, b: FieldAccess,
                            trips_by_var: Dict[str, int]) -> str:
    """Relation of two fields within one invocation.

    Returns ``"disjoint"``, ``"exact"`` (identical interval),
    ``"overlap"``, or ``"unknown"``.
    """
    diff = b.offset.sub(a.offset)
    if diff.is_constant:
        d = diff.const
        if d == 0 and a.extent == b.extent:
            return "exact"
        return ("overlap" if _intervals_overlap(0, a.extent, d,
                                                b.extent)
                else "disjoint")
    if _space_size(trips_by_var) <= _MAX_POINTS:
        for point in _iteration_points(trips_by_var):
            if _intervals_overlap(a.offset.evaluate(point), a.extent,
                                  b.offset.evaluate(point), b.extent):
                return "overlap"
        return "disjoint"
    ra = _affine_range(a.offset, trips_by_var)
    rb = _affine_range(b.offset, trips_by_var)
    if ra is not None and rb is not None and not _intervals_overlap(
            ra[0], ra[1] - ra[0] + a.extent,
            rb[0], rb[1] - rb[0] + b.extent):
        return "disjoint"
    return "unknown"


def _mixed_radix_disjoint(offset: Affine, extent: int,
                          trips_by_var: Dict[str, int]
                          ) -> Optional[bool]:
    """Mixed-radix proof that distinct iterations yield disjoint
    intervals. True = proven disjoint, False = proven overlapping,
    None = the argument does not apply."""
    if extent <= 0:
        return True
    active = []
    for var, trip in trips_by_var.items():
        if trip <= 1:
            continue
        coef = offset.coef(var)
        if coef == 0:
            return False          # two iterations share the interval
        active.append((abs(coef), trip))
    span = extent
    for coef, trip in sorted(active):
        if coef < span:
            return None           # strides interleave; proof fails
        span = coef * (trip - 1) + span
    return True


def cross_iteration_overlap(w: FieldAccess, f: FieldAccess,
                            trips_by_var: Dict[str, int]) -> str:
    """Can ``w`` in one iteration touch ``f`` in a *different* one?

    Returns ``"disjoint"``, ``"overlap"``, or ``"unknown"``. Callers
    must treat ``unknown`` conservatively (assume a dependence).
    """
    if not trips_by_var or _space_size(trips_by_var) <= 1:
        return "disjoint"
    diff = f.offset.sub(w.offset)
    if diff.is_constant and diff.const == 0 and w.extent == f.extent:
        proved = _mixed_radix_disjoint(w.offset, w.extent,
                                       trips_by_var)
        if proved is not None:
            return "disjoint" if proved else "overlap"
    if diff.is_constant:
        # common stride vector: scan iteration differences
        names = [v for v, t in trips_by_var.items() if t > 1]
        size = 1
        for v in names:
            size *= 2 * trips_by_var[v] - 1
        if size <= _MAX_DELTAS:
            coefs = [w.offset.coef(v) for v in names]
            d = diff.const
            for deltas in product(*(
                    range(-(trips_by_var[v] - 1), trips_by_var[v])
                    for v in names)):
                if not any(deltas):
                    continue
                shift = d + sum(c * dv for c, dv in zip(coefs,
                                                        deltas))
                if _intervals_overlap(0, w.extent, shift, f.extent):
                    return "overlap"
            return "disjoint"
    total = _space_size(trips_by_var)
    if total * total <= _MAX_POINTS:
        points = list(_iteration_points(trips_by_var))
        for i, pi in enumerate(points):
            wi = w.offset.evaluate(pi)
            for j, pj in enumerate(points):
                if i == j:
                    continue
                if _intervals_overlap(wi, w.extent,
                                      f.offset.evaluate(pj),
                                      f.extent):
                    return "overlap"
        return "disjoint"
    rw = _affine_range(w.offset, trips_by_var)
    rf = _affine_range(f.offset, trips_by_var)
    if rw is not None and rf is not None and not _intervals_overlap(
            rw[0], rw[1] - rw[0] + w.extent,
            rf[0], rf[1] - rf[0] + f.extent):
        return "disjoint"
    return "unknown"
