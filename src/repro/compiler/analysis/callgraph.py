"""Call graph over user-defined functions, with recursion detection.

The interprocedural analysis is summary-based: effect summaries are
computed per function, callees before callers, so a summary can fold
in the (already computed) summaries of the functions it calls.
``CallGraph`` provides that bottom-up order plus the set of functions
on (or reaching) a recursive cycle — their summaries are unavailable
and every dependent analysis must be conservative (``MEA011``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.compiler.cast import FuncDef, Program, walk_calls

#: Synthetic node for the implicit main body.
MAIN = "<main>"


@dataclass
class CallGraph:
    """Edges caller -> callees over user-defined function names."""

    functions: Dict[str, FuncDef] = field(default_factory=dict)
    edges: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def callees(self, name: str) -> Tuple[str, ...]:
        return self.edges.get(name, ())

    def recursive(self) -> Set[str]:
        """Functions on a call cycle (direct or mutual recursion)."""
        state: Dict[str, int] = {}          # 0 visiting, 1 done
        on_cycle: Set[str] = set()
        stack: List[str] = []

        def visit(name: str) -> None:
            state[name] = 0
            stack.append(name)
            for callee in self.callees(name):
                if callee not in self.functions:
                    continue
                if callee not in state:
                    visit(callee)
                elif state[callee] == 0:
                    # back edge: everything from callee on the stack
                    # participates in the cycle
                    idx = stack.index(callee)
                    on_cycle.update(stack[idx:])
            stack.pop()
            state[name] = 1

        for name in self.functions:
            if name not in state:
                visit(name)
        return on_cycle

    def unavailable(self) -> Set[str]:
        """Functions whose summary cannot exist: recursive, or calling
        (transitively) a recursive function."""
        bad = self.recursive()
        changed = True
        while changed:
            changed = False
            for name in self.functions:
                if name in bad:
                    continue
                if any(c in bad for c in self.callees(name)):
                    bad.add(name)
                    changed = True
        return bad

    def topo_order(self) -> List[str]:
        """Callees-first order over the non-recursive functions."""
        skip = self.unavailable()
        order: List[str] = []
        seen: Set[str] = set(skip)

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            for callee in self.callees(name):
                if callee in self.functions:
                    visit(callee)
            order.append(name)

        for name in self.functions:
            visit(name)
        return order

    def chain_to(self, name: str) -> Tuple[str, ...]:
        """One call chain from main to ``name`` (for diagnostics)."""
        parents: Dict[str, str] = {}
        frontier = [MAIN]
        seen = {MAIN}
        while frontier:
            cur = frontier.pop(0)
            for callee in self.callees(cur):
                if callee in seen or callee not in self.functions:
                    continue
                parents[callee] = cur
                if callee == name:
                    chain = [callee]
                    while parents.get(chain[0], MAIN) != MAIN:
                        chain.insert(0, parents[chain[0]])
                    return tuple(chain)
                seen.add(callee)
                frontier.append(callee)
        return (name,)


def build_call_graph(program: Program) -> CallGraph:
    """Call edges of every function body plus the implicit main."""
    functions = program.function_map()
    graph = CallGraph(functions=functions)

    def callees_of(body) -> Tuple[str, ...]:
        names = []
        for call in walk_calls(body):
            if call.func in functions and call.func not in names:
                names.append(call.func)
        return tuple(names)

    for func in program.functions:
        graph.edges[func.name] = callees_of(func.body)
    graph.edges[MAIN] = callees_of(program.stmts)
    return graph
