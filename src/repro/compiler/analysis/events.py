"""Buffer/plan lifecycle and access events per statement.

Dataflow facts are phrased over *events* — the analysable things a
statement does to a buffer or an FFTW plan. The per-function pointer
effects table below encodes which arguments each supported library call
reads and writes; everything else the rules need (alloc/free order,
plan creation/destruction) comes from the malloc/free/plan forms the
recognizer also understands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.affine import AffineError
from repro.compiler.cast import (Assign, Call, ExprStmt, Ident, Stmt,
                                 VarDecl)
from repro.compiler.diagnostics import SourceLoc
from repro.compiler.semantics import CompileEnv, SemanticError

#: Event kinds:
#:   alloc / free        heap buffer lifecycle (malloc / free)
#:   read / write        library call touches the buffer's memory
#:   ref                 address taken without a data access (plan setup)
#:   plan_make / plan_use / plan_kill   FFTW plan lifecycle
#:   escape              address captured by state outliving the call
EVENT_KINDS = ("alloc", "free", "read", "write", "ref",
               "plan_make", "plan_use", "plan_kill", "escape")


@dataclass(frozen=True)
class BufferEvent:
    kind: str
    name: str                        # buffer or plan name
    loc: Optional[SourceLoc] = None
    #: call chain (outermost callee first) when the event reaches this
    #: statement through a user-defined function's effect summary;
    #: empty for events the statement performs directly.
    chain: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")


#: Pointer-argument effects of each supported library call:
#: ``{arg index: "r" | "w" | "rw"}``. Indices are 0-based positions in
#: the C argument list.
CALL_EFFECTS = {
    "cblas_saxpy": {2: "r", 4: "rw"},
    "cblas_sdot_sub": {1: "r", 3: "r", 5: "w"},
    "cblas_cdotc_sub": {1: "r", 3: "r", 5: "w"},
    "cblas_sgemv": {5: "r", 7: "r", 10: "rw"},
    "mkl_scsrgemv": {1: "r", 2: "r", 3: "r", 4: "r", 5: "w"},
    "dfsInterpolate1D": {2: "r", 3: "r", 5: "r", 6: "w"},
    "mkl_simatcopy": {3: "rw"},
    "mkl_somatcopy": {3: "r", 4: "w"},
    "cblas_cherk": {3: "r", 5: "rw"},
    "cblas_ctrsm_lower": {2: "r", 3: "rw"},
    "cblas_ctrsm_upper": {2: "r", 3: "rw"},
    "cpotrf_lower": {1: "rw"},
}


def _buffer_of(env: CompileEnv, expr) -> Optional[str]:
    """Buffer name a pointer argument resolves to (None if unknown)."""
    try:
        name, _ = env.buffer_address(expr)
    except (SemanticError, AffineError):
        return None
    return name


def _summary_events(env: CompileEnv, call: Call,
                    loc: Optional[SourceLoc],
                    summary) -> List[BufferEvent]:
    """Replay a callee's effect summary at this call site.

    Parameter targets are re-bound to the caller's buffers; events on
    the callee's globals pass through unchanged. Every replayed event
    carries the call chain so downstream diagnostics can name the path
    (and the lifecycle rules can upgrade a violation to MEA012)."""
    if not summary.available:
        return []
    binding: Dict[str, Optional[str]] = {}
    for (pname, pointer), arg in zip(summary.params, call.args):
        if pointer:
            binding[pname] = _buffer_of(env, arg)
    events: List[BufferEvent] = []
    for ev in summary.events:
        kind, name = ev.target
        if kind == "param":
            resolved = binding.get(name)
            if resolved is None:
                continue
            name = resolved
        events.append(BufferEvent(ev.kind, name, loc,
                                  chain=(summary.name,) + ev.chain))
    return events


def _call_events(env: CompileEnv, call: Call,
                 loc: Optional[SourceLoc],
                 summaries: Optional[Dict[str, object]] = None
                 ) -> List[BufferEvent]:
    events: List[BufferEvent] = []
    if summaries and call.func in summaries:
        return _summary_events(env, call, loc, summaries[call.func])
    if call.func == "free":
        if call.args:
            if isinstance(call.args[0], Ident):
                events.append(
                    BufferEvent("free", call.args[0].name, loc))
            else:
                buf = _buffer_of(env, call.args[0])
                if buf is not None:
                    events.append(BufferEvent("free", buf, loc))
        return events
    if call.func == "fftwf_destroy_plan":
        if call.args and isinstance(call.args[0], Ident):
            events.append(
                BufferEvent("plan_kill", call.args[0].name, loc))
        return events
    if call.func == "fftwf_execute":
        arg = call.args[0] if call.args else None
        if isinstance(arg, Ident) and arg.name in env.plans:
            plan = env.plans[arg.name]
            events.append(BufferEvent("plan_use", arg.name, loc))
            events.append(BufferEvent("read", plan.src, loc))
            events.append(BufferEvent("write", plan.dst, loc))
        return events
    effects = CALL_EFFECTS.get(call.func)
    if effects is None:
        return events
    for idx, mode in effects.items():
        if idx >= len(call.args):
            continue
        buf = _buffer_of(env, call.args[idx])
        if buf is None:
            continue
        if "r" in mode:
            events.append(BufferEvent("read", buf, loc))
        if "w" in mode:
            events.append(BufferEvent("write", buf, loc))
    return events


def stmt_events(stmt: Stmt, env: CompileEnv,
                summaries: Optional[Dict[str, object]] = None
                ) -> List[BufferEvent]:
    """Events the statement performs, in execution order.

    With ``summaries`` (name -> :class:`FunctionSummary`), a call to a
    user-defined function expands to its summarised effects — the
    interprocedural half of the analysis."""
    if isinstance(stmt, VarDecl):
        return []
    if isinstance(stmt, Assign):
        value = stmt.value
        if isinstance(value, Call) and value.func == "malloc" \
                and isinstance(stmt.target, Ident):
            return [BufferEvent("alloc", stmt.target.name, stmt.loc)]
        if isinstance(value, Call) \
                and value.func == "fftwf_plan_guru_dft" \
                and isinstance(stmt.target, Ident):
            events = [BufferEvent("plan_make", stmt.target.name,
                                  stmt.loc)]
            # the plan captures both buffer addresses at creation time
            for arg_idx in (4, 5):
                if arg_idx < len(value.args):
                    buf = _buffer_of(env, value.args[arg_idx])
                    if buf is not None:
                        events.append(
                            BufferEvent("ref", buf, stmt.loc))
            return events
        return []
    if isinstance(stmt, ExprStmt) and isinstance(stmt.expr, Call):
        return _call_events(env, stmt.expr, stmt.loc, summaries)
    return []
