"""Rewrite-safety certificates for offloaded accelerated calls.

Every :class:`AccelCallStep` that survives the rule battery carries a
:class:`SafetyCertificate`: the machine-checked facts that justify
offloading it, each naming the dependence prover that established it.
The facts are exactly what a scheduling/rewrite layer must re-check
before fusing, splitting, or reordering passes:

``in-place-disjoint``
    within one invocation, the written field is disjoint from every
    other field of the same buffer (``in-place-exact`` for the
    transforms whose semantics allow coincident src/dst).
``carried-dependence-free``
    a serially-looped step's write never touches another iteration's
    footprint — loop compaction preserves semantics.
``iteration-disjoint``
    an OpenMP-collapsed step's parallel iterations are provably
    isolated.
``recognized-reduction``
    parallel iterations deposit into one shared interval through a
    reduction the LOOP descriptor serialises faithfully.
``bounds-respected``
    the step's whole footprint provably stays inside the buffer's
    allocated byte interval.

``certify_step`` returns ``None`` when any required fact cannot be
proven — by construction that never happens for a step the rule
engine left offloaded, and the invariant is pinned by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.compiler.analysis.alias import (INPLACE_EXACT_OK,
                                           cross_iteration,
                                           same_iteration,
                                           step_accesses, step_ranges)
from repro.compiler.analysis.cfg import build_cfg
from repro.compiler.analysis.ranges import (Interval, ValueRanges,
                                            affine_interval)
from repro.compiler.analysis.races import (is_recognized_reduction,
                                           shared_interval)
from repro.compiler.cast import Program
from repro.compiler.diagnostics import SourceLoc
from repro.compiler.recognizer import AccelCallStep, Schedule
from repro.compiler.semantics import CompileEnv


@dataclass(frozen=True)
class CertFact:
    """One proven safety fact, with the prover that established it."""

    kind: str
    prover: str
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind,
                                  "prover": self.prover}
        if self.detail:
            out["detail"] = self.detail
        return out


@dataclass(frozen=True)
class SafetyCertificate:
    """The complete legality record of one offloaded step."""

    step_index: int
    accel: str
    loc: Optional[SourceLoc]
    facts: Tuple[CertFact, ...]

    def kinds(self) -> Tuple[str, ...]:
        return tuple(f.kind for f in self.facts)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "step_index": self.step_index,
            "accel": self.accel,
            "facts": [f.to_dict() for f in self.facts],
        }
        if self.loc is not None:
            out["line"] = self.loc.line
            out["col"] = self.loc.col
        return out


def certify_step(step: AccelCallStep, step_index: int,
                 env: CompileEnv,
                 vranges: Optional[ValueRanges] = None
                 ) -> Optional[SafetyCertificate]:
    """Prove the offload-safety facts for one accelerated step.

    Returns ``None`` when a required fact cannot be established — the
    caller must not offload such a step (the rule engine will have
    demoted or rejected it already).
    """
    accesses = step_accesses(step, env)
    loop_ranges, invariant = step_ranges(step, vranges)
    writes = [a for a in accesses if a.writes]
    facts: List[CertFact] = []

    # within one invocation: the written field vs every other field
    for w in writes:
        for other in accesses:
            if other.field == w.field or other.buffer != w.buffer:
                continue
            verdict = same_iteration(w, other, loop_ranges, invariant)
            pair = f"{w.field} vs {other.field} on {w.buffer!r}"
            if verdict.relation == "disjoint":
                facts.append(CertFact("in-place-disjoint",
                                      verdict.prover, pair))
            elif verdict.relation == "exact" \
                    and step.accel in INPLACE_EXACT_OK:
                facts.append(CertFact("in-place-exact",
                                      verdict.prover, pair))
            else:
                return None

    # across iterations of the collapsed nest
    space = 1
    for t in step.trips:
        space *= t
    if step.looped and space > 1:
        kind = ("iteration-disjoint" if step.omp
                else "carried-dependence-free")
        checked = set()
        for w in writes:
            for other in accesses:
                if other.buffer != w.buffer:
                    continue
                pair_key = (w.buffer,) + tuple(
                    sorted({w.field, other.field}))
                if pair_key in checked:
                    continue
                checked.add(pair_key)
                verdict = cross_iteration(w, other, loop_ranges,
                                          invariant)
                pair = (w.field if other.field == w.field
                        else f"{w.field} vs {other.field}")
                if verdict.relation == "disjoint":
                    facts.append(CertFact(
                        kind, verdict.prover,
                        f"{pair} on {w.buffer!r}"))
                    continue
                if step.omp and w.field == other.field \
                        and shared_interval(w, step.loop_vars) \
                        and is_recognized_reduction(step):
                    facts.append(CertFact(
                        "recognized-reduction", "loop-serialisation",
                        f"{pair} on {w.buffer!r}"))
                    continue
                return None

    # the whole footprint stays inside each buffer's allocation
    ranges = {**invariant, **loop_ranges}
    for acc in accesses:
        info = env.buffers.get(acc.buffer)
        if info is None or info.count <= 0 or acc.extent <= 0:
            continue                # size unknown: no claim made
        span = affine_interval(acc.offset, ranges)
        footprint = Interval(span.lo,
                             None if span.hi is None
                             else span.hi + acc.extent - 1)
        if footprint.is_bounded and footprint.lo is not None \
                and footprint.hi is not None \
                and footprint.lo >= 0 \
                and footprint.hi < info.total_bytes:
            facts.append(CertFact(
                "bounds-respected", "interval-bounds",
                f"{acc.field} within {acc.buffer!r} "
                f"[0, {info.total_bytes})"))

    return SafetyCertificate(step_index=step_index, accel=step.accel,
                             loc=step.loc, facts=tuple(facts))


def certify_schedule(program: Program, schedule: Schedule,
                     skip: Iterable[int] = ()
                     ) -> Tuple[SafetyCertificate, ...]:
    """Certificates for every offloaded step of a checked schedule.

    ``skip`` names the step indices the rule engine demoted; those
    execute on the host and carry no certificate.
    """
    skipped = set(skip)
    cfg = build_cfg(program)
    vranges = ValueRanges(cfg, schedule.env)
    certs: List[SafetyCertificate] = []
    for idx, step in enumerate(schedule.steps):
        if idx in skipped or not isinstance(step, AccelCallStep):
            continue
        cert = certify_step(step, idx, schedule.env, vranges)
        if cert is not None:
            certs.append(cert)
    return tuple(certs)
