"""Static OpenMP race detection over accelerated parallel loops.

An accelerated call collapsed out of a ``#pragma omp parallel for``
nest executes its iterations concurrently in the original program.
Offloading it is only faithful when the iterations could not have
raced in the first place, so each such step is classified as:

* **iteration-disjoint** — every written byte interval of one
  iteration is disjoint from every interval another iteration touches
  (proved with the mixed-radix argument or bounded enumeration from
  :mod:`.alias`). Offloadable; no finding.
* **recognized reduction** — all iterations accumulate into the
  *same* interval through an associative update (AXPY's ``y += a*x``;
  GEMV with ``beta == 1``). Offloadable with an INFO-severity MEA010
  note: the LOOP descriptor serialises iterations on the accelerator,
  so the reduction is safe there even though the host OpenMP version
  races benignly on the accumulation order.
* **racy** — overlapping writes (MEA008) or a write overlapping
  another iteration's read (MEA009), or a shared output whose update
  is not a recognized reduction (MEA010 at ERROR severity). The step
  demotes to the host library, keeping the original semantics.

``unknown`` overlap answers classify as racy: offload must be proven
safe, never assumed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compiler.analysis.alias import (FieldAccess,
                                           cross_iteration_overlap,
                                           step_accesses)
from repro.compiler.diagnostics import Diagnostic, Severity
from repro.compiler.recognizer import AccelCallStep
from repro.compiler.semantics import CompileEnv

#: Accelerators whose write field accumulates associatively, making a
#: shared output a *reduction* rather than a lost-update race.
_REDUCTION_ACCELS = {"AXPY"}


def _is_reduction_update(step: AccelCallStep) -> bool:
    if step.accel in _REDUCTION_ACCELS:
        return True
    if step.accel == "GEMV":
        # y = alpha*A*x + beta*y accumulates only when beta == 1
        beta = step.proto.scalars.get("beta")
        return isinstance(beta, (int, float)) and float(beta) == 1.0
    return False


def _shared_interval(access: FieldAccess,
                     loop_vars: Tuple[str, ...]) -> bool:
    """True when every iteration touches the identical interval."""
    return all(access.offset.coef(v) == 0 for v in loop_vars)


def classify_races(step: AccelCallStep, step_index: int,
                   env: CompileEnv) -> List[Diagnostic]:
    """Race findings for one omp-collapsed accelerated step.

    Returns an empty list for iteration-disjoint steps, a single INFO
    MEA010 for a recognized reduction, and ERROR findings (MEA008 /
    MEA009 / MEA010) for everything racy.
    """
    findings: List[Diagnostic] = []
    trips_by_var: Dict[str, int] = dict(zip(step.loop_vars, step.trips))
    if not step.looped:
        return findings
    space = 1
    for t in step.trips:
        space *= t
    if space <= 1:
        return findings

    accesses = step_accesses(step, env)
    writes = [a for a in accesses if a.writes]

    def emit(code: str, severity: Severity, message: str,
             buffers: Tuple[str, ...]) -> None:
        findings.append(Diagnostic(
            code=code, severity=severity, message=message,
            loc=step.loc, buffers=buffers, step_index=step_index,
            chain=step.chain))

    seen_pairs: set = set()
    for w in writes:
        # -- write vs write (including the field against itself) ----------
        for other in writes:
            if other.buffer != w.buffer:
                continue
            pair = (w.buffer,) + tuple(sorted({w.field, other.field}))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            rel = cross_iteration_overlap(w, other, trips_by_var)
            if rel == "disjoint":
                continue
            shared = (w.field == other.field
                      and _shared_interval(w, step.loop_vars))
            if shared and _is_reduction_update(step):
                emit("MEA010", Severity.INFO,
                     f"{step.accel} accumulates into the shared "
                     f"interval of buffer {w.buffer!r}: recognized "
                     "reduction; the LOOP descriptor serialises "
                     "iterations, so the offload is safe",
                     (w.buffer,))
                continue
            if shared:
                emit("MEA010", Severity.ERROR,
                     f"{step.accel} overwrites the shared interval of "
                     f"buffer {w.buffer!r} from every iteration and "
                     "the update is not a recognized reduction; "
                     "parallel iterations race on the final value",
                     (w.buffer,))
                continue
            detail = ("overlap" if rel == "overlap"
                      else "cannot be proven disjoint")
            emit("MEA008", Severity.ERROR,
                 f"{step.accel} writes to {w.field} on buffer "
                 f"{w.buffer!r} {detail} across parallel iterations "
                 "(write-write race)", (w.buffer,))
        # -- write vs pure reads of other fields --------------------------
        for other in accesses:
            if other.writes or other.buffer != w.buffer \
                    or other.field == w.field:
                continue
            rel = cross_iteration_overlap(w, other, trips_by_var)
            if rel == "disjoint":
                continue
            detail = ("overlaps" if rel == "overlap"
                      else "cannot be proven disjoint from")
            emit("MEA009", Severity.ERROR,
                 f"{step.accel} write to {w.field} {detail} the "
                 f"{other.field} read of another iteration on buffer "
                 f"{w.buffer!r} (read-write race)", (w.buffer,))
    return findings
