"""Static OpenMP race detection over accelerated parallel loops.

An accelerated call collapsed out of a ``#pragma omp parallel for``
nest executes its iterations concurrently in the original program.
Offloading it is only faithful when the iterations could not have
raced in the first place, so each such step is classified as:

* **iteration-disjoint** — every written byte interval of one
  iteration is disjoint from every interval another iteration touches
  (proved by the symbolic dependence tower or bounded enumeration in
  :mod:`.deptest`). Offloadable; no finding.
* **recognized reduction** — all iterations accumulate into the
  *same* interval through a recognized serialisable update (AXPY's
  ``y += a*x``; GEMV with ``beta == 1``; the DOT family's ``*_sub``
  result scalar, where every iteration deposits its partial into one
  cell). Offloadable with an INFO-severity MEA010 note: the LOOP
  descriptor serialises iterations on the accelerator, reproducing
  the serial program's final value even though the host OpenMP
  version races benignly on it.
* **racy** — overlapping writes (MEA008) or a write overlapping
  another iteration's read (MEA009), or a shared output whose update
  is not a recognized reduction (MEA010 at ERROR severity). The step
  demotes to the host library, keeping the original semantics.

``unknown`` overlap answers classify as racy: offload must be proven
safe, never assumed. When the verdict needed the enumeration fallback
(or stayed unknown), an INFO-severity MEA017 names the prover that
gave up so silent precision losses are visible in reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.analysis.alias import (FieldAccess, cross_iteration,
                                           step_accesses, step_ranges)
from repro.compiler.analysis.deptest import DepVerdict
from repro.compiler.analysis.ranges import ValueRanges
from repro.compiler.diagnostics import Diagnostic, Severity
from repro.compiler.recognizer import AccelCallStep
from repro.compiler.semantics import CompileEnv

#: Accelerators whose write field accumulates associatively, making a
#: shared output a *reduction* rather than a lost-update race.
_REDUCTION_ACCELS = {"AXPY"}

#: DOT-family accelerators: the ``cblas_sdot_sub`` / ``cblas_cdotc_sub``
#: idiom deposits each iteration's partial result into one shared
#: ``*_sub`` scalar. The LOOP descriptor serialises the deposits, so
#: the offload reproduces the serial program's final value.
_DOT_SUB_ACCELS = {"DOT"}


def is_recognized_reduction(step: AccelCallStep) -> bool:
    """Is a shared-interval update of this step's write field a
    reduction the LOOP descriptor can serialise faithfully?"""
    if step.accel in _REDUCTION_ACCELS:
        return True
    if step.accel in _DOT_SUB_ACCELS:
        return True
    if step.accel == "GEMV":
        # y = alpha*A*x + beta*y accumulates only when beta == 1
        beta = step.proto.scalars.get("beta")
        return isinstance(beta, (int, float)) and float(beta) == 1.0
    return False


def shared_interval(access: FieldAccess,
                    loop_vars: Tuple[str, ...]) -> bool:
    """True when every iteration touches the identical interval."""
    return all(access.offset.coef(v) == 0 for v in loop_vars)


def fallback_note(verdict: DepVerdict, w: FieldAccess,
                  other: FieldAccess) -> str:
    """Message body of an MEA017 prover-fallback finding."""
    pair = (w.field if w.field == other.field
            else f"{w.field} vs {other.field}")
    if verdict.prover == "enumeration":
        return (f"symbolic dependence provers were inconclusive for "
                f"{pair} on buffer {w.buffer!r}; bounded enumeration "
                f"decided {verdict.relation!r}")
    return (f"all dependence provers were inconclusive for {pair} on "
            f"buffer {w.buffer!r} (symbolic ranges unbounded, "
            "enumeration infeasible); assuming a dependence")


def classify_races(step: AccelCallStep, step_index: int,
                   env: CompileEnv,
                   vranges: Optional[ValueRanges] = None
                   ) -> List[Diagnostic]:
    """Race findings for one omp-collapsed accelerated step.

    Returns an empty list for iteration-disjoint steps, a single INFO
    MEA010 for a recognized reduction, and ERROR findings (MEA008 /
    MEA009 / MEA010) for everything racy. INFO MEA017 findings ride
    along whenever a verdict needed the enumeration fallback.
    """
    findings: List[Diagnostic] = []
    if not step.looped:
        return findings
    space = 1
    for t in step.trips:
        space *= t
    if space <= 1:
        return findings

    accesses = step_accesses(step, env)
    loop_ranges, invariant = step_ranges(step, vranges)
    writes = [a for a in accesses if a.writes]

    def emit(code: str, severity: Severity, message: str,
             buffers: Tuple[str, ...], prover: str = "") -> None:
        findings.append(Diagnostic(
            code=code, severity=severity, message=message,
            loc=step.loc, buffers=buffers, step_index=step_index,
            chain=step.chain, prover=prover))

    noted_fallbacks: Set[Tuple[str, str]] = set()

    def note_fallback(verdict: DepVerdict, w: FieldAccess,
                      other: FieldAccess) -> None:
        if not verdict.fallback:
            return
        key = tuple(sorted({w.field, other.field}))
        pair_key = (w.buffer, "/".join(key))
        if pair_key in noted_fallbacks:
            return
        noted_fallbacks.add(pair_key)
        emit("MEA017", Severity.INFO, fallback_note(verdict, w, other),
             (w.buffer,), prover=verdict.prover)

    seen_pairs: set = set()
    for w in writes:
        # -- write vs write (including the field against itself) ----------
        for other in writes:
            if other.buffer != w.buffer:
                continue
            pair = (w.buffer,) + tuple(sorted({w.field, other.field}))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            verdict = cross_iteration(w, other, loop_ranges, invariant)
            note_fallback(verdict, w, other)
            if verdict.relation == "disjoint":
                continue
            shared = (w.field == other.field
                      and shared_interval(w, step.loop_vars))
            if shared and is_recognized_reduction(step):
                emit("MEA010", Severity.INFO,
                     f"{step.accel} accumulates into the shared "
                     f"interval of buffer {w.buffer!r}: recognized "
                     "reduction; the LOOP descriptor serialises "
                     "iterations, so the offload is safe",
                     (w.buffer,), prover=verdict.prover)
                continue
            if shared:
                emit("MEA010", Severity.ERROR,
                     f"{step.accel} overwrites the shared interval of "
                     f"buffer {w.buffer!r} from every iteration and "
                     "the update is not a recognized reduction; "
                     "parallel iterations race on the final value",
                     (w.buffer,), prover=verdict.prover)
                continue
            detail = ("overlap" if verdict.relation == "overlap"
                      else "cannot be proven disjoint")
            emit("MEA008", Severity.ERROR,
                 f"{step.accel} writes to {w.field} on buffer "
                 f"{w.buffer!r} {detail} across parallel iterations "
                 "(write-write race)", (w.buffer,),
                 prover=verdict.prover)
        # -- write vs pure reads of other fields --------------------------
        for other in accesses:
            if other.writes or other.buffer != w.buffer \
                    or other.field == w.field:
                continue
            verdict = cross_iteration(w, other, loop_ranges, invariant)
            note_fallback(verdict, w, other)
            if verdict.relation == "disjoint":
                continue
            detail = ("overlaps" if verdict.relation == "overlap"
                      else "cannot be proven disjoint from")
            emit("MEA009", Severity.ERROR,
                 f"{step.accel} write to {w.field} {detail} the "
                 f"{other.field} read of another iteration on buffer "
                 f"{w.buffer!r} (read-write race)", (w.buffer,),
                 prover=verdict.prover)
    return findings
