"""Worklist dataflow solvers over the CFG.

Two instances power the safety rules:

* **Reaching lifecycle** (forward, may): which ``alloc``/``free``/
  ``plan_kill`` events can reach a program point. Use-before-init,
  use-after-free, double-free, and execute-after-destroy are all
  queries against these facts.
* **Liveness** (backward, may): which buffers are still referenced at
  or after a program point. A heap buffer that is dead immediately
  after its ``malloc`` is never consumed (MEA007).

Facts are frozensets of hashable tokens, so the merge is plain set
union and termination follows from the finite token universe.
"""

from __future__ import annotations

from typing import (Callable, Dict, FrozenSet, Iterable, List,
                    Optional, Tuple)

from repro.compiler.analysis.cfg import Cfg
from repro.compiler.analysis.events import BufferEvent, stmt_events
from repro.compiler.semantics import CompileEnv

#: name -> FunctionSummary (kept loose to avoid an import cycle).
Summaries = Optional[Dict[str, object]]

Facts = FrozenSet[Tuple[str, str]]
Transfer = Callable[[int, Facts], Facts]

EMPTY: Facts = frozenset()


def solve_forward(cfg: Cfg, transfer: Transfer,
                  init: Facts = EMPTY) -> Tuple[Dict[int, Facts],
                                                Dict[int, Facts]]:
    """Iterate ``out[b] = transfer(b, union(out[preds]))`` to fixpoint."""
    in_facts: Dict[int, Facts] = {b.bid: EMPTY for b in cfg.blocks}
    out_facts: Dict[int, Facts] = {b.bid: EMPTY for b in cfg.blocks}
    in_facts[cfg.entry] = init
    out_facts[cfg.entry] = transfer(cfg.entry, init)
    order = cfg.rpo()
    changed = True
    while changed:
        changed = False
        for bid in order:
            if bid == cfg.entry:
                continue
            merged: Facts = frozenset().union(
                *(out_facts[p] for p in cfg.block(bid).preds)) \
                if cfg.block(bid).preds else EMPTY
            new_out = transfer(bid, merged)
            if merged != in_facts[bid] or new_out != out_facts[bid]:
                in_facts[bid] = merged
                out_facts[bid] = new_out
                changed = True
    return in_facts, out_facts


def solve_backward(cfg: Cfg, transfer: Transfer,
                   init: Facts = EMPTY) -> Tuple[Dict[int, Facts],
                                                 Dict[int, Facts]]:
    """Iterate ``in[b] = transfer(b, union(in[succs]))`` to fixpoint.

    Returns ``(in_facts, out_facts)`` where ``out`` is the merged
    successor state the transfer consumed.
    """
    in_facts: Dict[int, Facts] = {b.bid: EMPTY for b in cfg.blocks}
    out_facts: Dict[int, Facts] = {b.bid: EMPTY for b in cfg.blocks}
    order = list(reversed(cfg.rpo()))
    changed = True
    while changed:
        changed = False
        for bid in order:
            merged: Facts = frozenset().union(
                *(in_facts[s] for s in cfg.block(bid).succs)) \
                if cfg.block(bid).succs else init
            new_in = transfer(bid, merged)
            if merged != out_facts[bid] or new_in != in_facts[bid]:
                out_facts[bid] = merged
                in_facts[bid] = new_in
                changed = True
    return in_facts, out_facts


class LifecycleFacts:
    """Reaching alloc/free/plan-death facts at every statement.

    Fact tokens: ``("alloc", buf)``, ``("free", buf)``,
    ``("plan_dead", plan)``. ``alloc`` and ``free`` kill each other, so
    at any point the facts name the possible lifecycle states of each
    buffer along some path.
    """

    def __init__(self, cfg: Cfg, env: CompileEnv,
                 summaries: Summaries = None):
        self.cfg = cfg
        self.env = env
        self._events: Dict[int, List[List[BufferEvent]]] = {
            b.bid: [stmt_events(s, env, summaries) for s in b.stmts]
            for b in cfg.blocks}
        self.block_in, self.block_out = solve_forward(
            cfg, self._transfer)

    @staticmethod
    def apply_event(facts: Facts, ev: BufferEvent) -> Facts:
        if ev.kind == "alloc":
            return (facts - {("free", ev.name)}) | {("alloc", ev.name)}
        if ev.kind == "free":
            return (facts - {("alloc", ev.name)}) | {("free", ev.name)}
        if ev.kind == "plan_make":
            return facts - {("plan_dead", ev.name)}
        if ev.kind == "plan_kill":
            return facts | {("plan_dead", ev.name)}
        return facts

    def _transfer(self, bid: int, facts: Facts) -> Facts:
        for ev_list in self._events[bid]:
            for ev in ev_list:
                facts = self.apply_event(facts, ev)
        return facts

    def walk(self, visit: Callable[[BufferEvent, Facts], None]) -> None:
        """Replay every event once with the facts *before* it.

        Blocks are visited in reverse post-order with their fixpoint
        IN facts, so the facts seen include everything loops carry
        around; each event site is reported exactly once.
        """
        for bid in self.cfg.rpo():
            facts = self.block_in[bid]
            for ev_list in self._events[bid]:
                for ev in ev_list:
                    visit(ev, facts)
                    facts = self.apply_event(facts, ev)


class Liveness:
    """Backward may-liveness of buffer references.

    A buffer is *live* at a point if some later statement reads,
    writes, or takes the address of it. Fact tokens: ``("live", buf)``.
    """

    def __init__(self, cfg: Cfg, env: CompileEnv,
                 summaries: Summaries = None):
        self.cfg = cfg
        self.env = env
        self._events: Dict[int, List[List[BufferEvent]]] = {
            b.bid: [stmt_events(s, env, summaries) for s in b.stmts]
            for b in cfg.blocks}
        self.block_in, self.block_out = solve_backward(
            cfg, self._transfer)

    @staticmethod
    def _refs(events: Iterable[BufferEvent]) -> Facts:
        return frozenset(("live", ev.name) for ev in events
                         if ev.kind in ("read", "write", "ref",
                                        "escape"))

    def _transfer(self, bid: int, facts: Facts) -> Facts:
        for ev_list in self._events[bid]:
            facts = facts | self._refs(ev_list)
        return facts

    def live_after_alloc(self, bid: int, stmt_idx: int,
                         buffer: str) -> bool:
        """Is ``buffer`` referenced anywhere after this statement?"""
        events = self._events[bid]
        for ev_list in events[stmt_idx + 1:]:
            if ("live", buffer) in self._refs(ev_list):
                return True
        return ("live", buffer) in self.block_out[bid]

    def alloc_sites(self):
        """Yield ``(bid, stmt_idx, event)`` for every alloc event."""
        for bid, per_stmt in self._events.items():
            for idx, ev_list in enumerate(per_stmt):
                for ev in ev_list:
                    if ev.kind == "alloc":
                        yield bid, idx, ev
