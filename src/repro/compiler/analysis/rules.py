"""The offload-safety rule engine.

Runs the dataflow and alias analyses over a parsed program and its
recognizer schedule, and emits stable diagnostic codes:

========  ========================================================
MEA001    buffer used before ``malloc`` initialised it
MEA002    in-place alias between fields of an accelerated call
MEA003    buffer used after ``free``
MEA004    double ``free``
MEA005    loop-carried dependence blocks loop compaction
MEA006    FFTW plan executed after ``fftwf_destroy_plan``
MEA007    heap buffer allocated but never consumed (warning)
MEA008    write-write race under ``#pragma omp parallel for``
MEA009    read-write race under ``#pragma omp parallel for``
MEA010    reduction under a parallel loop (ERROR when the update is
          not a recognized reduction; INFO when recognized)
MEA011    effect summary unavailable (escaping buffer) — demote
MEA012    interprocedural lifecycle mismatch (MEA001/003/004/006
          reached through a user-defined function's summary)
MEA015    static out-of-bounds: a footprint provably exceeds its
          buffer's allocation — reject
MEA016    possibly out of bounds under the derived value ranges —
          demote (warning)
MEA017    a symbolic dependence prover gave up; the verdict fell
          back to bounded enumeration or stayed unknown (info)
========  ========================================================

``error`` findings split two ways: alias/dependence/race errors
(MEA002, MEA005, MEA008–MEA011) *demote* the accelerated call back to
the host library — the program still runs, just without the unsound
offload — while lifecycle errors (MEA001/003/004/006 and their
interprocedural form MEA012) and provable out-of-bounds footprints
(MEA015) describe a program that is wrong on any target and therefore
reject it. MEA016 is the sole *warning* that demotes: the program may
be correct, but the offload cannot be proven in-bounds.

Dependence questions are answered by the symbolic prover tower in
:mod:`.deptest` (constant-distance, mixed-radix, value-range bounds,
GCD, Banerjee direction vectors) with bounded enumeration only as a
flagged fallback; MEA002/MEA005 findings carry the prover name, and
every offloaded step earns a :class:`SafetyCertificate` recording the
proofs (:mod:`.certificates`).

The analysis is summary-based: user-defined function calls are never
re-analysed per call site; their precomputed effect summaries
(:mod:`.summaries`) replay into the same worklist solvers, carrying
the call chain for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.analysis.alias import (INPLACE_EXACT_OK,
                                           cross_iteration,
                                           same_iteration,
                                           step_accesses, step_ranges)
from repro.compiler.analysis.certificates import (SafetyCertificate,
                                                  certify_schedule)
from repro.compiler.analysis.cfg import Cfg, build_cfg
from repro.compiler.analysis.dataflow import LifecycleFacts, Liveness
from repro.compiler.analysis.deptest import DepVerdict
from repro.compiler.analysis.events import BufferEvent, stmt_events
from repro.compiler.analysis.races import classify_races, fallback_note
from repro.compiler.analysis.ranges import (TOP, Interval, ValueRanges,
                                            affine_interval)
from repro.compiler.analysis.summaries import (FunctionSummary,
                                               compute_summaries)
from repro.compiler.cast import Program
from repro.compiler.diagnostics import (Diagnostic, DiagnosticReport,
                                        Severity)
from repro.compiler.recognizer import AccelCallStep, Schedule

#: Error codes that demote the accelerated call to host execution.
DEMOTE_CODES = frozenset({"MEA002", "MEA005", "MEA008", "MEA009",
                          "MEA010", "MEA011"})
#: Warning codes that demote: the program may be right, but the
#: offload cannot be proven safe under the derived value ranges.
WARN_DEMOTE_CODES = frozenset({"MEA016"})
#: Error codes that reject the program outright (wrong on any target).
REJECT_CODES = frozenset({"MEA001", "MEA003", "MEA004", "MEA006",
                          "MEA012", "MEA015"})


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    program: Program
    schedule: Schedule
    report: DiagnosticReport
    certificates: Tuple[SafetyCertificate, ...] = field(
        default_factory=tuple)
    #: the rewrite engine's decision log (MEA018/MEA019), empty unless
    #: the analysis ran with ``rewrite=True``
    rewrites: Tuple = ()

    @property
    def ok(self) -> bool:
        return not self.report.has_errors


# -- lifecycle rules (MEA001/003/004/006/012) --------------------------------

def _check_lifecycle(cfg: Cfg, schedule: Schedule,
                     report: DiagnosticReport,
                     summaries: Optional[Dict[str, FunctionSummary]]
                     = None) -> None:
    env = schedule.env
    lifecycle = LifecycleFacts(cfg, env, summaries)
    seen: Set[Tuple] = set()

    def emit(code: str, message: str, ev: BufferEvent) -> None:
        if ev.chain:
            # the violating effect reaches this statement through a
            # user-defined function's summary: interprocedural mismatch
            path = " -> ".join(ev.chain)
            message = f"{message} (inside {path}())"
            code = "MEA012"
        key = (code, ev.name, ev.loc)
        if key in seen:
            return
        seen.add(key)
        report.add(Diagnostic(code=code, severity=Severity.ERROR,
                              message=message, loc=ev.loc,
                              buffers=(ev.name,), chain=ev.chain))

    def visit(ev: BufferEvent, facts) -> None:
        if ev.kind in ("read", "write", "ref"):
            info = env.buffers.get(ev.name)
            if info is None or not info.heap:
                return                  # declared arrays are always live
            if ("free", ev.name) in facts:
                emit("MEA003",
                     f"buffer {ev.name!r} is used after free()", ev)
            elif ("alloc", ev.name) not in facts:
                emit("MEA001",
                     f"buffer {ev.name!r} is used before malloc() "
                     "initialises it", ev)
        elif ev.kind == "free":
            if ("free", ev.name) in facts:
                emit("MEA004",
                     f"buffer {ev.name!r} is freed twice", ev)
        elif ev.kind == "plan_use":
            if ("plan_dead", ev.name) in facts:
                emit("MEA006",
                     f"plan {ev.name!r} is executed after "
                     "fftwf_destroy_plan()", ev)

    lifecycle.walk(visit)


def _check_dead_buffers(cfg: Cfg, schedule: Schedule,
                        report: DiagnosticReport,
                        summaries: Optional[Dict[str, FunctionSummary]]
                        = None) -> None:
    liveness = Liveness(cfg, schedule.env, summaries)
    for bid, idx, ev in liveness.alloc_sites():
        if not liveness.live_after_alloc(bid, idx, ev.name):
            report.add(Diagnostic(
                code="MEA007", severity=Severity.WARNING,
                message=f"buffer {ev.name!r} is allocated but never "
                        "consumed", loc=ev.loc, buffers=(ev.name,)))


def _escaped_buffers(cfg: Cfg, schedule: Schedule,
                     summaries: Dict[str, FunctionSummary]
                     ) -> Dict[str, Tuple[str, ...]]:
    """Buffers whose address escapes *inside* a user-defined function.

    The caller cannot see the capture locally (a plan created in the
    callee holds the pointer), so accelerated calls on such buffers
    under a parallel loop cannot be proven isolated: the effect
    summary reports the escape and the step demotes (MEA011).
    """
    escaped: Dict[str, Tuple[str, ...]] = {}
    for block in cfg.blocks:
        for stmt in block.stmts:
            for ev in stmt_events(stmt, schedule.env, summaries):
                if ev.kind == "escape" and ev.chain \
                        and ev.name not in escaped:
                    escaped[ev.name] = ev.chain
    return escaped


# -- alias / dependence rules (MEA002/005/017) --------------------------------

def _check_step_aliasing(step: AccelCallStep, step_index: int,
                         schedule: Schedule,
                         report: DiagnosticReport,
                         vranges: Optional[ValueRanges] = None) -> None:
    env = schedule.env
    accesses = step_accesses(step, env)
    loop_ranges, invariant = step_ranges(step, vranges)
    writes = [a for a in accesses if a.writes]
    seen: Set[Tuple] = set()

    def emit(code: str, severity: Severity, message: str,
             fields: Tuple[str, ...], buffers: Tuple[str, ...],
             prover: str = "") -> None:
        key = (code, step_index, tuple(sorted(fields)))
        if key in seen:
            return
        seen.add(key)
        report.add(Diagnostic(code=code, severity=severity,
                              message=message, loc=step.loc,
                              buffers=buffers, step_index=step_index,
                              prover=prover))

    def note_fallback(verdict: DepVerdict, w, other) -> None:
        if verdict.fallback:
            emit("MEA017", Severity.INFO,
                 fallback_note(verdict, w, other),
                 (w.field, other.field), (w.buffer,),
                 prover=verdict.prover)

    for w in writes:
        for other in accesses:
            if other.field == w.field or other.buffer != w.buffer:
                continue
            verdict = same_iteration(w, other, loop_ranges, invariant)
            note_fallback(verdict, w, other)
            rel = verdict.relation
            if rel == "exact" and step.accel in INPLACE_EXACT_OK:
                continue
            if rel in ("exact", "overlap", "unknown"):
                detail = ("aliases" if rel != "unknown"
                          else "may alias")
                emit("MEA002", Severity.ERROR,
                     f"{step.accel} output {w.field} {detail} "
                     f"{other.field} on buffer {w.buffer!r} "
                     "(in-place operation is not supported by this "
                     "accelerator)", (w.field, other.field),
                     (w.buffer,), prover=verdict.prover)

    if not step.looped or step.omp:
        # omp-collapsed steps answer to the race detector (MEA008-010)
        # instead of the serial loop-compaction rule below
        return
    for w in writes:
        checked: Set[Tuple] = set()
        for other in accesses:
            if other.buffer != w.buffer:
                continue
            pair_key = tuple(sorted({w.field, other.field}))
            if pair_key in checked:
                continue
            checked.add(pair_key)
            verdict = cross_iteration(w, other, loop_ranges, invariant)
            note_fallback(verdict, w, other)
            if verdict.relation == "disjoint":
                continue
            detail = ("carries a dependence across iterations"
                      if verdict.relation == "overlap"
                      else "cannot be proven iteration-independent")
            fields = (w.field,) if other.field == w.field \
                else (w.field, other.field)
            emit("MEA005", Severity.ERROR,
                 f"{step.accel} write to {w.field} on buffer "
                 f"{w.buffer!r} {detail}; OpenMP collapse is unsafe",
                 fields, (w.buffer,), prover=verdict.prover)


# -- static bounds rules (MEA015/016) -----------------------------------------

def _check_step_bounds(step: AccelCallStep, step_index: int,
                       schedule: Schedule, report: DiagnosticReport,
                       vranges: Optional[ValueRanges] = None) -> None:
    """Footprint-vs-allocation check for every address field.

    The footprint of a field is ``[min offset, max offset + extent)``
    over the derived variable ranges. An affine attains its interval
    bounds at corners of the iteration box, so when every variable in
    the offset is an exact loop variable a violation is *provable*
    (MEA015: reject — some iteration really touches bytes outside the
    allocation). When the interval involves over-approximated or
    unbounded symbolic ranges the step is only *possibly* out of
    bounds (MEA016: demote with a warning).
    """
    env = schedule.env
    accesses = step_accesses(step, env)
    loop_ranges, invariant = step_ranges(step, vranges)
    ranges = {**invariant, **loop_ranges}
    seen: Set[str] = set()
    for acc in accesses:
        if acc.field in seen:
            continue
        seen.add(acc.field)
        info = env.buffers.get(acc.buffer)
        if info is None or info.count <= 0 or acc.extent <= 0:
            continue                # allocation size unknown
        span = affine_interval(acc.offset, ranges)
        total = info.total_bytes
        lo = span.lo
        hi = None if span.hi is None else span.hi + acc.extent - 1
        if lo is not None and hi is not None \
                and lo >= 0 and hi < total:
            continue                # provably inside
        exact = all(not coef or var in loop_ranges
                    for var, coef in acc.offset.coefs.items())
        if exact and lo is not None and hi is not None:
            report.add(Diagnostic(
                code="MEA015", severity=Severity.ERROR,
                message=f"{step.accel} field {acc.field} touches "
                        f"bytes [{lo}, {hi}] of buffer "
                        f"{acc.buffer!r}, outside its allocated "
                        f"[0, {total}) byte interval",
                loc=step.loc, buffers=(acc.buffer,),
                step_index=step_index, prover="interval-bounds"))
            continue
        unbounded = sorted(
            var for var, coef in acc.offset.coefs.items()
            if coef and not ranges.get(var, TOP).is_bounded)
        why = (f"the range of {', '.join(unbounded)!s} is unbounded"
               if unbounded else "the derived ranges are inexact")
        report.add(Diagnostic(
            code="MEA016", severity=Severity.WARNING,
            message=f"{step.accel} field {acc.field} cannot be "
                    f"proven inside buffer {acc.buffer!r}'s "
                    f"[0, {total}) byte interval ({why}); demoting "
                    "the call to the host",
            loc=step.loc, buffers=(acc.buffer,),
            step_index=step_index, prover="interval-bounds"))


# -- entry points ------------------------------------------------------------

def check_program(program: Program,
                  schedule: Schedule) -> DiagnosticReport:
    """Run every safety rule; returns the full (sorted) report."""
    report = DiagnosticReport()
    cfg = build_cfg(program)
    summaries = compute_summaries(program, schedule.env)
    vranges = ValueRanges(cfg, schedule.env)
    _check_lifecycle(cfg, schedule, report, summaries)
    _check_dead_buffers(cfg, schedule, report, summaries)
    escaped = _escaped_buffers(cfg, schedule, summaries)
    for idx, step in enumerate(schedule.steps):
        if not isinstance(step, AccelCallStep):
            continue
        _check_step_aliasing(step, idx, schedule, report, vranges)
        _check_step_bounds(step, idx, schedule, report, vranges)
        if not step.omp:
            continue
        touched = [b for b in dict.fromkeys(step.in_bufs
                                            + step.out_bufs)
                   if b in escaped]
        if touched:
            buf = touched[0]
            path = " -> ".join(escaped[buf])
            report.add(Diagnostic(
                code="MEA011", severity=Severity.ERROR,
                message=f"buffer {buf!r} escapes into plan state "
                        f"inside {path}(); the effect summary cannot "
                        "prove the parallel iterations are isolated",
                loc=step.loc, buffers=tuple(touched), step_index=idx,
                chain=escaped[buf]))
            continue
        report.extend(classify_races(step, idx, schedule.env, vranges))
    return report.sort()


def analyze_source(source: str, rewrite: bool = False
                   ) -> AnalysisResult:
    """Parse, recognize, and check a C-subset program.

    With ``rewrite`` the verified rewrite engine additionally runs
    over the certified schedule: its decision log (MEA018 applied /
    MEA019 rejected, each naming its prover or blocking dependence)
    joins the report, and the certificates reflect the rewritten
    steps (fused passes carry the merged proof).
    """
    import dataclasses

    from repro.compiler.cparser import parse_source
    from repro.compiler.recognizer import recognize

    program = parse_source(source)
    schedule = recognize(program)
    report = check_program(program, schedule)
    certificates: Tuple[SafetyCertificate, ...] = ()
    rewrites: Tuple = ()
    if not rejection_errors(report):
        lowered, demoted = apply_demotions(schedule, report)
        certificates = certify_schedule(program, lowered,
                                        skip=demoted)
        if rewrite:
            from repro.compiler.rewrite import rewrite_schedule
            by_index = {c.step_index: c for c in certificates}
            steps = [dataclasses.replace(s, certificate=by_index[i])
                     if isinstance(s, AccelCallStep) and i in by_index
                     else s
                     for i, s in enumerate(lowered.steps)]
            certified = Schedule(env=lowered.env, steps=steps)
            result = rewrite_schedule(program, certified)
            rewrites = result.decisions
            certificates = result.certificates
            report.extend(d.diagnostic() for d in result.decisions)
            report.sort()
    return AnalysisResult(program=program, schedule=schedule,
                          report=report, certificates=certificates,
                          rewrites=rewrites)


def apply_demotions(schedule: Schedule, report: DiagnosticReport
                    ) -> Tuple[Schedule, List[int]]:
    """Demote accel steps flagged by any :data:`DEMOTE_CODES` error
    (alias, serial dependence, race, unavailable summary) or
    :data:`WARN_DEMOTE_CODES` warning (possible out-of-bounds) to
    host calls.

    Returns the (possibly new) schedule and the demoted step indices.
    """
    to_demote: Set[int] = set()
    for diag in report:
        if diag.step_index is None:
            continue
        if diag.code in DEMOTE_CODES \
                and diag.severity is Severity.ERROR:
            to_demote.add(diag.step_index)
        elif diag.code in WARN_DEMOTE_CODES \
                and diag.severity is Severity.WARNING:
            to_demote.add(diag.step_index)
    if not to_demote:
        return schedule, []
    steps = []
    demoted: List[int] = []
    for idx, step in enumerate(schedule.steps):
        if idx in to_demote and isinstance(step, AccelCallStep):
            steps.append(step.demote())
            demoted.append(idx)
        else:
            steps.append(step)
    return Schedule(env=schedule.env, steps=steps), demoted


def rejection_errors(report: DiagnosticReport) -> List[Diagnostic]:
    """The findings that make the program unrunnable on any target."""
    return [d for d in report
            if d.code in REJECT_CODES and d.severity is Severity.ERROR]
