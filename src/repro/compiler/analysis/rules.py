"""The offload-safety rule engine.

Runs the dataflow and alias analyses over a parsed program and its
recognizer schedule, and emits stable diagnostic codes:

========  ========================================================
MEA001    buffer used before ``malloc`` initialised it
MEA002    in-place alias between fields of an accelerated call
MEA003    buffer used after ``free``
MEA004    double ``free``
MEA005    loop-carried dependence blocks loop compaction
MEA006    FFTW plan executed after ``fftwf_destroy_plan``
MEA007    heap buffer allocated but never consumed (warning)
MEA008    write-write race under ``#pragma omp parallel for``
MEA009    read-write race under ``#pragma omp parallel for``
MEA010    reduction under a parallel loop (ERROR when the update is
          not a recognized reduction; INFO when recognized)
MEA011    effect summary unavailable (escaping buffer) — demote
MEA012    interprocedural lifecycle mismatch (MEA001/003/004/006
          reached through a user-defined function's summary)
========  ========================================================

``error`` findings split two ways: alias/dependence/race errors
(MEA002, MEA005, MEA008–MEA011) *demote* the accelerated call back to
the host library — the program still runs, just without the unsound
offload — while lifecycle errors (MEA001/003/004/006 and their
interprocedural form MEA012) describe a program that is wrong on any
target and therefore reject it.

The analysis is summary-based: user-defined function calls are never
re-analysed per call site; their precomputed effect summaries
(:mod:`.summaries`) replay into the same worklist solvers, carrying
the call chain for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.analysis.alias import (INPLACE_EXACT_OK,
                                           cross_iteration_overlap,
                                           same_iteration_relation,
                                           step_accesses)
from repro.compiler.analysis.cfg import Cfg, build_cfg
from repro.compiler.analysis.dataflow import LifecycleFacts, Liveness
from repro.compiler.analysis.events import BufferEvent, stmt_events
from repro.compiler.analysis.races import classify_races
from repro.compiler.analysis.summaries import (FunctionSummary,
                                               compute_summaries)
from repro.compiler.cast import Program
from repro.compiler.diagnostics import (Diagnostic, DiagnosticReport,
                                        Severity)
from repro.compiler.recognizer import AccelCallStep, Schedule

#: Error codes that demote the accelerated call to host execution.
DEMOTE_CODES = frozenset({"MEA002", "MEA005", "MEA008", "MEA009",
                          "MEA010", "MEA011"})
#: Error codes that reject the program outright (wrong on any target).
REJECT_CODES = frozenset({"MEA001", "MEA003", "MEA004", "MEA006",
                          "MEA012"})


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    program: Program
    schedule: Schedule
    report: DiagnosticReport

    @property
    def ok(self) -> bool:
        return not self.report.has_errors


# -- lifecycle rules (MEA001/003/004/006/012) --------------------------------

def _check_lifecycle(cfg: Cfg, schedule: Schedule,
                     report: DiagnosticReport,
                     summaries: Optional[Dict[str, FunctionSummary]]
                     = None) -> None:
    env = schedule.env
    lifecycle = LifecycleFacts(cfg, env, summaries)
    seen: Set[Tuple] = set()

    def emit(code: str, message: str, ev: BufferEvent) -> None:
        if ev.chain:
            # the violating effect reaches this statement through a
            # user-defined function's summary: interprocedural mismatch
            path = " -> ".join(ev.chain)
            message = f"{message} (inside {path}())"
            code = "MEA012"
        key = (code, ev.name, ev.loc)
        if key in seen:
            return
        seen.add(key)
        report.add(Diagnostic(code=code, severity=Severity.ERROR,
                              message=message, loc=ev.loc,
                              buffers=(ev.name,), chain=ev.chain))

    def visit(ev: BufferEvent, facts) -> None:
        if ev.kind in ("read", "write", "ref"):
            info = env.buffers.get(ev.name)
            if info is None or not info.heap:
                return                  # declared arrays are always live
            if ("free", ev.name) in facts:
                emit("MEA003",
                     f"buffer {ev.name!r} is used after free()", ev)
            elif ("alloc", ev.name) not in facts:
                emit("MEA001",
                     f"buffer {ev.name!r} is used before malloc() "
                     "initialises it", ev)
        elif ev.kind == "free":
            if ("free", ev.name) in facts:
                emit("MEA004",
                     f"buffer {ev.name!r} is freed twice", ev)
        elif ev.kind == "plan_use":
            if ("plan_dead", ev.name) in facts:
                emit("MEA006",
                     f"plan {ev.name!r} is executed after "
                     "fftwf_destroy_plan()", ev)

    lifecycle.walk(visit)


def _check_dead_buffers(cfg: Cfg, schedule: Schedule,
                        report: DiagnosticReport,
                        summaries: Optional[Dict[str, FunctionSummary]]
                        = None) -> None:
    liveness = Liveness(cfg, schedule.env, summaries)
    for bid, idx, ev in liveness.alloc_sites():
        if not liveness.live_after_alloc(bid, idx, ev.name):
            report.add(Diagnostic(
                code="MEA007", severity=Severity.WARNING,
                message=f"buffer {ev.name!r} is allocated but never "
                        "consumed", loc=ev.loc, buffers=(ev.name,)))


def _escaped_buffers(cfg: Cfg, schedule: Schedule,
                     summaries: Dict[str, FunctionSummary]
                     ) -> Dict[str, Tuple[str, ...]]:
    """Buffers whose address escapes *inside* a user-defined function.

    The caller cannot see the capture locally (a plan created in the
    callee holds the pointer), so accelerated calls on such buffers
    under a parallel loop cannot be proven isolated: the effect
    summary reports the escape and the step demotes (MEA011).
    """
    escaped: Dict[str, Tuple[str, ...]] = {}
    for block in cfg.blocks:
        for stmt in block.stmts:
            for ev in stmt_events(stmt, schedule.env, summaries):
                if ev.kind == "escape" and ev.chain \
                        and ev.name not in escaped:
                    escaped[ev.name] = ev.chain
    return escaped


# -- alias / dependence rules (MEA002/005) -----------------------------------

def _check_step_aliasing(step: AccelCallStep, step_index: int,
                         schedule: Schedule,
                         report: DiagnosticReport) -> None:
    env = schedule.env
    accesses = step_accesses(step, env)
    trips_by_var = dict(zip(step.loop_vars, step.trips))
    writes = [a for a in accesses if a.writes]
    seen: Set[Tuple] = set()

    def emit(code: str, message: str, fields: Tuple[str, ...],
             buffers: Tuple[str, ...]) -> None:
        key = (code, step_index, tuple(sorted(fields)))
        if key in seen:
            return
        seen.add(key)
        report.add(Diagnostic(code=code, severity=Severity.ERROR,
                              message=message, loc=step.loc,
                              buffers=buffers, step_index=step_index))

    for w in writes:
        for other in accesses:
            if other.field == w.field or other.buffer != w.buffer:
                continue
            rel = same_iteration_relation(w, other, trips_by_var)
            if rel == "exact" and step.accel in INPLACE_EXACT_OK:
                continue
            if rel in ("exact", "overlap", "unknown"):
                detail = ("aliases" if rel != "unknown"
                          else "may alias")
                emit("MEA002",
                     f"{step.accel} output {w.field} {detail} "
                     f"{other.field} on buffer {w.buffer!r} "
                     "(in-place operation is not supported by this "
                     "accelerator)", (w.field, other.field),
                     (w.buffer,))

    if not step.looped or step.omp:
        # omp-collapsed steps answer to the race detector (MEA008-010)
        # instead of the serial loop-compaction rule below
        return
    for w in writes:
        checked: Set[Tuple] = set()
        for other in accesses:
            if other.buffer != w.buffer:
                continue
            pair_key = tuple(sorted({w.field, other.field}))
            if pair_key in checked:
                continue
            checked.add(pair_key)
            rel = cross_iteration_overlap(w, other, trips_by_var)
            if rel == "disjoint":
                continue
            detail = ("carries a dependence across iterations"
                      if rel == "overlap"
                      else "cannot be proven iteration-independent")
            fields = (w.field,) if other.field == w.field \
                else (w.field, other.field)
            emit("MEA005",
                 f"{step.accel} write to {w.field} on buffer "
                 f"{w.buffer!r} {detail}; OpenMP collapse is unsafe",
                 fields, (w.buffer,))


# -- entry points ------------------------------------------------------------

def check_program(program: Program,
                  schedule: Schedule) -> DiagnosticReport:
    """Run every safety rule; returns the full (sorted) report."""
    report = DiagnosticReport()
    cfg = build_cfg(program)
    summaries = compute_summaries(program, schedule.env)
    _check_lifecycle(cfg, schedule, report, summaries)
    _check_dead_buffers(cfg, schedule, report, summaries)
    escaped = _escaped_buffers(cfg, schedule, summaries)
    for idx, step in enumerate(schedule.steps):
        if not isinstance(step, AccelCallStep):
            continue
        _check_step_aliasing(step, idx, schedule, report)
        if not step.omp:
            continue
        touched = [b for b in dict.fromkeys(step.in_bufs
                                            + step.out_bufs)
                   if b in escaped]
        if touched:
            buf = touched[0]
            path = " -> ".join(escaped[buf])
            report.add(Diagnostic(
                code="MEA011", severity=Severity.ERROR,
                message=f"buffer {buf!r} escapes into plan state "
                        f"inside {path}(); the effect summary cannot "
                        "prove the parallel iterations are isolated",
                loc=step.loc, buffers=tuple(touched), step_index=idx,
                chain=escaped[buf]))
            continue
        report.extend(classify_races(step, idx, schedule.env))
    return report.sort()


def analyze_source(source: str) -> AnalysisResult:
    """Parse, recognize, and check a C-subset program."""
    from repro.compiler.cparser import parse_source
    from repro.compiler.recognizer import recognize

    program = parse_source(source)
    schedule = recognize(program)
    report = check_program(program, schedule)
    return AnalysisResult(program=program, schedule=schedule,
                          report=report)


def apply_demotions(schedule: Schedule, report: DiagnosticReport
                    ) -> Tuple[Schedule, List[int]]:
    """Demote accel steps flagged by any :data:`DEMOTE_CODES` error
    (alias, serial dependence, race, unavailable summary) to host
    calls.

    Returns the (possibly new) schedule and the demoted step indices.
    """
    to_demote: Set[int] = set()
    for diag in report:
        if diag.code in DEMOTE_CODES \
                and diag.severity is Severity.ERROR \
                and diag.step_index is not None:
            to_demote.add(diag.step_index)
    if not to_demote:
        return schedule, []
    steps = []
    demoted: List[int] = []
    for idx, step in enumerate(schedule.steps):
        if idx in to_demote and isinstance(step, AccelCallStep):
            steps.append(step.demote())
            demoted.append(idx)
        else:
            steps.append(step)
    return Schedule(env=schedule.env, steps=steps), demoted


def rejection_errors(report: DiagnosticReport) -> List[Diagnostic]:
    """The findings that make the program unrunnable on any target."""
    return [d for d in report
            if d.code in REJECT_CODES and d.severity is Severity.ERROR]
