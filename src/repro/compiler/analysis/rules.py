"""The offload-safety rule engine.

Runs the dataflow and alias analyses over a parsed program and its
recognizer schedule, and emits stable diagnostic codes:

========  ========================================================
MEA001    buffer used before ``malloc`` initialised it
MEA002    in-place alias between fields of an accelerated call
MEA003    buffer used after ``free``
MEA004    double ``free``
MEA005    loop-carried dependence blocks OpenMP collapse
MEA006    FFTW plan executed after ``fftwf_destroy_plan``
MEA007    heap buffer allocated but never consumed (warning)
========  ========================================================

``error`` findings split two ways: alias/dependence errors (MEA002,
MEA005) *demote* the accelerated call back to the host library — the
program still runs, just without the unsound offload — while lifecycle
errors (MEA001/003/004/006) describe a program that is wrong on any
target and therefore reject it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.analysis.alias import (INPLACE_EXACT_OK,
                                           cross_iteration_overlap,
                                           same_iteration_relation,
                                           step_accesses)
from repro.compiler.analysis.cfg import Cfg, build_cfg
from repro.compiler.analysis.dataflow import LifecycleFacts, Liveness
from repro.compiler.analysis.events import BufferEvent
from repro.compiler.cast import Program
from repro.compiler.diagnostics import (Diagnostic, DiagnosticReport,
                                        Severity)
from repro.compiler.recognizer import AccelCallStep, Schedule

#: Error codes that demote the accelerated call to host execution.
DEMOTE_CODES = frozenset({"MEA002", "MEA005"})
#: Error codes that reject the program outright (wrong on any target).
REJECT_CODES = frozenset({"MEA001", "MEA003", "MEA004", "MEA006"})


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    program: Program
    schedule: Schedule
    report: DiagnosticReport

    @property
    def ok(self) -> bool:
        return not self.report.has_errors


# -- lifecycle rules (MEA001/003/004/006) ------------------------------------

def _check_lifecycle(cfg: Cfg, schedule: Schedule,
                     report: DiagnosticReport) -> None:
    env = schedule.env
    lifecycle = LifecycleFacts(cfg, env)
    seen: Set[Tuple] = set()

    def emit(code: str, message: str, ev: BufferEvent) -> None:
        key = (code, ev.name, ev.loc)
        if key in seen:
            return
        seen.add(key)
        report.add(Diagnostic(code=code, severity=Severity.ERROR,
                              message=message, loc=ev.loc,
                              buffers=(ev.name,)))

    def visit(ev: BufferEvent, facts) -> None:
        if ev.kind in ("read", "write", "ref"):
            info = env.buffers.get(ev.name)
            if info is None or not info.heap:
                return                  # declared arrays are always live
            if ("free", ev.name) in facts:
                emit("MEA003",
                     f"buffer {ev.name!r} is used after free()", ev)
            elif ("alloc", ev.name) not in facts:
                emit("MEA001",
                     f"buffer {ev.name!r} is used before malloc() "
                     "initialises it", ev)
        elif ev.kind == "free":
            if ("free", ev.name) in facts:
                emit("MEA004",
                     f"buffer {ev.name!r} is freed twice", ev)
        elif ev.kind == "plan_use":
            if ("plan_dead", ev.name) in facts:
                emit("MEA006",
                     f"plan {ev.name!r} is executed after "
                     "fftwf_destroy_plan()", ev)

    lifecycle.walk(visit)


def _check_dead_buffers(cfg: Cfg, schedule: Schedule,
                        report: DiagnosticReport) -> None:
    liveness = Liveness(cfg, schedule.env)
    for bid, idx, ev in liveness.alloc_sites():
        if not liveness.live_after_alloc(bid, idx, ev.name):
            report.add(Diagnostic(
                code="MEA007", severity=Severity.WARNING,
                message=f"buffer {ev.name!r} is allocated but never "
                        "consumed", loc=ev.loc, buffers=(ev.name,)))


# -- alias / dependence rules (MEA002/005) -----------------------------------

def _check_step_aliasing(step: AccelCallStep, step_index: int,
                         schedule: Schedule,
                         report: DiagnosticReport) -> None:
    env = schedule.env
    accesses = step_accesses(step, env)
    trips_by_var = dict(zip(step.loop_vars, step.trips))
    writes = [a for a in accesses if a.writes]
    seen: Set[Tuple] = set()

    def emit(code: str, message: str, fields: Tuple[str, ...],
             buffers: Tuple[str, ...]) -> None:
        key = (code, step_index, tuple(sorted(fields)))
        if key in seen:
            return
        seen.add(key)
        report.add(Diagnostic(code=code, severity=Severity.ERROR,
                              message=message, loc=step.loc,
                              buffers=buffers, step_index=step_index))

    for w in writes:
        for other in accesses:
            if other.field == w.field or other.buffer != w.buffer:
                continue
            rel = same_iteration_relation(w, other, trips_by_var)
            if rel == "exact" and step.accel in INPLACE_EXACT_OK:
                continue
            if rel in ("exact", "overlap", "unknown"):
                detail = ("aliases" if rel != "unknown"
                          else "may alias")
                emit("MEA002",
                     f"{step.accel} output {w.field} {detail} "
                     f"{other.field} on buffer {w.buffer!r} "
                     "(in-place operation is not supported by this "
                     "accelerator)", (w.field, other.field),
                     (w.buffer,))

    if not step.looped:
        return
    for w in writes:
        checked: Set[Tuple] = set()
        for other in accesses:
            if other.buffer != w.buffer:
                continue
            pair_key = tuple(sorted({w.field, other.field}))
            if pair_key in checked:
                continue
            checked.add(pair_key)
            rel = cross_iteration_overlap(w, other, trips_by_var)
            if rel == "disjoint":
                continue
            detail = ("carries a dependence across iterations"
                      if rel == "overlap"
                      else "cannot be proven iteration-independent")
            fields = (w.field,) if other.field == w.field \
                else (w.field, other.field)
            emit("MEA005",
                 f"{step.accel} write to {w.field} on buffer "
                 f"{w.buffer!r} {detail}; OpenMP collapse is unsafe",
                 fields, (w.buffer,))


# -- entry points ------------------------------------------------------------

def check_program(program: Program,
                  schedule: Schedule) -> DiagnosticReport:
    """Run every safety rule; returns the full report."""
    report = DiagnosticReport()
    cfg = build_cfg(program)
    _check_lifecycle(cfg, schedule, report)
    _check_dead_buffers(cfg, schedule, report)
    for idx, step in enumerate(schedule.steps):
        if isinstance(step, AccelCallStep):
            _check_step_aliasing(step, idx, schedule, report)
    return report


def analyze_source(source: str) -> AnalysisResult:
    """Parse, recognize, and check a C-subset program."""
    from repro.compiler.cparser import parse_source
    from repro.compiler.recognizer import recognize

    program = parse_source(source)
    schedule = recognize(program)
    report = check_program(program, schedule)
    return AnalysisResult(program=program, schedule=schedule,
                          report=report)


def apply_demotions(schedule: Schedule, report: DiagnosticReport
                    ) -> Tuple[Schedule, List[int]]:
    """Demote accel steps flagged by MEA002/MEA005 to host calls.

    Returns the (possibly new) schedule and the demoted step indices.
    """
    to_demote: Set[int] = set()
    for diag in report:
        if diag.code in DEMOTE_CODES \
                and diag.severity is Severity.ERROR \
                and diag.step_index is not None:
            to_demote.add(diag.step_index)
    if not to_demote:
        return schedule, []
    steps = []
    demoted: List[int] = []
    for idx, step in enumerate(schedule.steps):
        if idx in to_demote and isinstance(step, AccelCallStep):
            steps.append(step.demote())
            demoted.append(idx)
        else:
            steps.append(step)
    return Schedule(env=schedule.env, steps=steps), demoted


def rejection_errors(report: DiagnosticReport) -> List[Diagnostic]:
    """The findings that make the program unrunnable on any target."""
    return [d for d in report
            if d.code in REJECT_CODES and d.severity is Severity.ERROR]
