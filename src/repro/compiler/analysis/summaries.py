"""Per-function effect summaries for the interprocedural analysis.

A :class:`FunctionSummary` is everything the whole-program solvers
need to know about one user-defined function *without* looking inside
it again at every call site:

* **events** — the ordered lifecycle/access effects of one invocation
  (``alloc``/``free``/``read``/``write``/``ref``/``plan_*``/
  ``escape``) phrased over *summary targets*: a pointer parameter, a
  global buffer, or a plan. At a call site the parameter targets are
  re-bound to the caller's buffers and the events replayed into the
  dataflow solvers, so MEA001–MEA007 (and their interprocedural form
  MEA012) fire across function boundaries.
* **intervals** — byte intervals each pointer argument of a library
  call touches, affine in the function's scalar parameters and its
  own loop variables where provable (offset ``None`` marks an effect
  the summary cannot bound).
* **escapes** — pointer parameters whose address is captured by
  state that outlives the call (an FFTW plan): the caller loses
  local reasoning about that buffer, which conservatively demotes
  accelerated calls on it under parallel loops (MEA011).

Summaries are computed callees-first over the call graph; functions
on a recursive cycle have no summary (``available=False``) — and in a
branchless subset a recursive chain cannot terminate, so the
recognizer separately rejects such programs with code MEA011.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.affine import Affine, AffineError
from repro.compiler.analysis.callgraph import build_call_graph
from repro.compiler.analysis.events import CALL_EFFECTS
from repro.compiler.cast import (AddrOf, Assign, BinOp, Call, Expr,
                                 ExprStmt, For, FuncDef, Ident, Index,
                                 Program, Stmt, VarDecl)
from repro.compiler.cparser import TYPE_KEYWORDS
from repro.compiler.diagnostics import SourceLoc
from repro.compiler.semantics import CompileEnv, SemanticError

#: A summary target: ("param", name) | ("buffer", name) | ("plan", name).
Target = Tuple[str, str]


@dataclass(frozen=True)
class SummaryEvent:
    """One lifecycle/access effect of a function invocation."""

    kind: str
    target: Target
    loc: Optional[SourceLoc] = None
    #: user-function path *below* this function (nested calls).
    chain: Tuple[str, ...] = ()


@dataclass(frozen=True)
class IntervalEffect:
    """Byte interval a library call inside the function touches."""

    target: Target
    mode: str                        # "r" | "w"
    offset: Optional[Affine] = None  # bytes; affine in params/loop vars
    extent: Optional[int] = None     # bytes; None = unbounded/unknown


@dataclass
class FunctionSummary:
    """The whole-program-visible effect of one function."""

    name: str
    #: ordered formals as ``(name, is_pointer)`` — call sites use this
    #: to re-bind parameter targets to actual arguments.
    params: Tuple[Tuple[str, bool], ...] = ()
    events: Tuple[SummaryEvent, ...] = ()
    intervals: Tuple[IntervalEffect, ...] = ()
    escapes: Tuple[str, ...] = ()
    available: bool = True
    reason: str = ""

    def reads(self) -> Tuple[Target, ...]:
        return tuple(e.target for e in self.events if e.kind == "read")

    def writes(self) -> Tuple[Target, ...]:
        return tuple(e.target for e in self.events if e.kind == "write")


#: Byte extent of selected library-call pointer arguments, as a
#: function of the (const-resolved) scalar arguments. ``None`` entries
#: in the result mark extents the summary cannot bound.
def _extent_of(func: str, idx: int, consts: List[Optional[int]],
               elem: int) -> Optional[int]:
    def c(i: int) -> Optional[int]:
        return consts[i] if i < len(consts) else None

    n = c(0)
    if func == "cblas_saxpy":
        return None if n is None else n * elem
    if func in ("cblas_sdot_sub", "cblas_cdotc_sub"):
        if idx == 5:
            return elem
        inc = c(2) if idx == 1 else c(4)
        if n is None or inc is None:
            return None
        return ((n - 1) * abs(inc) + 1) * elem
    if func == "cblas_sgemv":
        m, cols = c(2), c(3)
        if m is None or cols is None:
            return None
        return {5: m * cols * elem, 7: cols * elem,
                10: m * elem}.get(idx)
    if func == "mkl_simatcopy":
        r, cl = c(0), c(1)
        return None if r is None or cl is None else r * cl * elem
    if func == "mkl_somatcopy":
        r, cl = c(0), c(1)
        return None if r is None or cl is None else r * cl * elem
    return None


class _Summarizer:
    def __init__(self, env: CompileEnv, func: FuncDef,
                 done: Dict[str, "FunctionSummary"]):
        self.env = env
        self.func = func
        self.done = done
        self.pointer_params = {p.name: p for p in func.params
                               if p.pointer}
        self.scalar_params = {p.name for p in func.params
                              if not p.pointer}
        self.events: List[SummaryEvent] = []
        self.intervals: List[IntervalEffect] = []
        self.escapes: List[str] = []

    # -- target / offset resolution ------------------------------------------

    def _base_ident(self, expr: Expr) -> Optional[str]:
        node = expr
        while True:
            if isinstance(node, AddrOf):
                node = node.operand
            elif isinstance(node, Index):
                node = node.base
            elif isinstance(node, BinOp) and node.op == "+":
                node = node.left
            elif isinstance(node, Ident):
                return node.name
            else:
                return None

    def resolve_target(self, expr: Expr) -> Optional[Target]:
        base = self._base_ident(expr)
        if base is None:
            return None
        if base in self.pointer_params:
            return ("param", base)
        if base in self.env.buffers:
            return ("buffer", base)
        return None

    def _offset_affine(self, expr: Expr,
                       target: Target) -> Optional[Affine]:
        """Byte offset of a pointer expression, affine in the scalar
        parameters and the function's loop variables."""
        try:
            if target[0] == "buffer":
                _, off = self.env.buffer_address(expr)
                return off
            # parameter pointers are flat: &p[i] or p + k forms only
            elem = TYPE_KEYWORDS.get(
                self.pointer_params[target[1]].ctype, 0)
            if isinstance(expr, Ident):
                return Affine.constant(0)
            if isinstance(expr, AddrOf) \
                    and isinstance(expr.operand, Index) \
                    and isinstance(expr.operand.base, Ident):
                return self.env.affine_expr(
                    expr.operand.idx).scale(elem)
            if isinstance(expr, BinOp) and expr.op == "+" \
                    and isinstance(expr.left, Ident):
                return self.env.affine_expr(expr.right).scale(elem)
        except (SemanticError, AffineError):
            return None
        return None

    def _const(self, expr: Expr) -> Optional[int]:
        try:
            value = self.env.eval_const(expr)
        except SemanticError:
            return None
        return int(value)

    # -- statement walk ------------------------------------------------------

    def run(self) -> FunctionSummary:
        self._walk(self.func.body)
        return FunctionSummary(
            name=self.func.name,
            params=tuple((p.name, p.pointer) for p in self.func.params),
            events=tuple(self.events),
            intervals=tuple(self.intervals),
            escapes=tuple(dict.fromkeys(self.escapes)))

    def _walk(self, stmts: Tuple[Stmt, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, VarDecl):
                continue
            if isinstance(stmt, For):
                self._walk(stmt.body)
                continue
            if isinstance(stmt, Assign):
                self._assign(stmt)
                continue
            if isinstance(stmt, ExprStmt) and isinstance(stmt.expr,
                                                         Call):
                self._call(stmt.expr, stmt.loc)

    def _assign(self, stmt: Assign) -> None:
        value = stmt.value
        if not isinstance(value, Call) \
                or not isinstance(stmt.target, Ident):
            return
        name = stmt.target.name
        if value.func == "malloc":
            if name in self.pointer_params:
                raise SemanticError(
                    f"function {self.func.name!r} reassigns pointer "
                    f"parameter {name!r} via malloc", loc=stmt.loc)
            self.events.append(
                SummaryEvent("alloc", ("buffer", name), stmt.loc))
            return
        if value.func == "fftwf_plan_guru_dft":
            self.events.append(
                SummaryEvent("plan_make", ("plan", name), stmt.loc))
            for idx in (4, 5):
                if idx >= len(value.args):
                    continue
                target = self.resolve_target(value.args[idx])
                if target is None:
                    continue
                self.events.append(
                    SummaryEvent("ref", target, stmt.loc))
                self.events.append(
                    SummaryEvent("escape", target, stmt.loc))
                if target[0] == "param":
                    self.escapes.append(target[1])

    def _call(self, call: Call,
              loc: Optional[SourceLoc]) -> None:
        name = call.func
        if name == "free":
            if call.args:
                target = self.resolve_target(call.args[0])
                if target is not None:
                    self.events.append(
                        SummaryEvent("free", target, loc))
            return
        if name == "fftwf_destroy_plan":
            if call.args and isinstance(call.args[0], Ident):
                self.events.append(SummaryEvent(
                    "plan_kill", ("plan", call.args[0].name), loc))
            return
        if name == "fftwf_execute":
            arg = call.args[0] if call.args else None
            if isinstance(arg, Ident) and arg.name in self.env.plans:
                plan = self.env.plans[arg.name]
                self.events.append(SummaryEvent(
                    "plan_use", ("plan", arg.name), loc))
                self.events.append(SummaryEvent(
                    "read", ("buffer", plan.src), loc))
                self.events.append(SummaryEvent(
                    "write", ("buffer", plan.dst), loc))
            return
        if name in self.done:           # nested user call: splice
            self._splice(call, loc)
            return
        effects = CALL_EFFECTS.get(name)
        if effects is None:
            return
        consts = [self._const(a) for a in call.args]
        for idx, mode in effects.items():
            if idx >= len(call.args):
                continue
            target = self.resolve_target(call.args[idx])
            if target is None:
                continue
            if target[0] == "param":
                elem = TYPE_KEYWORDS.get(
                    self.pointer_params[target[1]].ctype, 0)
            else:
                elem = self.env.buffers[target[1]].elem_size
            offset = self._offset_affine(call.args[idx], target)
            extent = _extent_of(name, idx, consts, elem)
            if "r" in mode:
                self.events.append(SummaryEvent("read", target, loc))
                self.intervals.append(IntervalEffect(
                    target, "r", offset, extent))
            if "w" in mode:
                self.events.append(SummaryEvent("write", target, loc))
                self.intervals.append(IntervalEffect(
                    target, "w", offset, extent))

    def _splice(self, call: Call,
                loc: Optional[SourceLoc]) -> None:
        callee = self.done[call.func]
        binding = self._binding(callee, call)
        for ev in callee.events:
            target = ev.target
            if target[0] == "param":
                resolved = binding.get(target[1])
                if resolved is None:
                    continue
                target = resolved
            self.events.append(SummaryEvent(
                ev.kind, target, loc,
                chain=(callee.name,) + ev.chain))
            if ev.kind == "escape" and target[0] == "param":
                self.escapes.append(target[1])
        for iv in callee.intervals:
            target = iv.target
            if target[0] == "param":
                resolved = binding.get(target[1])
                if resolved is None:
                    continue
                target = resolved
            # offsets are affine in the *callee's* frame; the caller
            # keeps only the extent (interval base unknown here).
            self.intervals.append(IntervalEffect(
                target, iv.mode, None, iv.extent))

    def _binding(self, callee: FunctionSummary,
                 call: Call) -> Dict[str, Optional[Target]]:
        """Map the callee's pointer-parameter names to caller targets."""
        out: Dict[str, Optional[Target]] = {}
        for (pname, pointer), arg in zip(callee.params, call.args):
            if pointer:
                out[pname] = self.resolve_target(arg)
        return out


def compute_summaries(program: Program,
                      env: CompileEnv) -> Dict[str, FunctionSummary]:
    """Summaries for every user-defined function, callees first.

    Functions on a recursive cycle (or calling one) get an
    ``available=False`` placeholder — rule code must treat any effect
    through them as unknowable.
    """
    graph = build_call_graph(program)
    functions = program.function_map()
    summaries: Dict[str, FunctionSummary] = {}
    for name in graph.unavailable():
        summaries[name] = FunctionSummary(
            name=name, available=False,
            reason="recursive call cycle; effect summary unavailable")
    for name in graph.topo_order():
        summaries[name] = _Summarizer(env, functions[name],
                                      summaries).run()
    return summaries
