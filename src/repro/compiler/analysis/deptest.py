"""Parametric affine dependence testing over the byte-offset model.

Every question the alias and race rules ask reduces to: can the affine
distance ``d = f_offset - w_offset`` land inside an *overlap window*
``W = [-(ef - 1), ew - 1]`` for some admissible assignment of the loop
and symbolic variables? This module answers it with a tower of sound
symbolic provers, falling back to the original bounded enumeration
only when the symbolic tower is inconclusive:

1. **constant-distance** — after substituting point-range variables,
   ``d`` is a known constant: the answer is exact.
2. **mixed-radix** — for a footprint against itself across iterations,
   the classic sorted-stride coverage argument (kept from the original
   prover; it is also the only symbolic test that can *prove* an
   overlap).
3. **interval-bounds** — value-range propagation: if the derived
   interval of ``d`` misses ``W`` entirely, the accesses are disjoint.
4. **gcd** — ``d`` is confined to the lattice ``anchor + g*Z`` with
   ``g = gcd`` of the live coefficients; if no lattice point falls in
   the feasible window, the accesses are disjoint.
5. **banerjee** — per direction vector (``<``, ``=``, ``>`` for each
   loop variable, the all-``=`` vector excluded for cross-iteration
   queries), exact min/max of ``d`` via vertex enumeration of the
   triangular ``v < v'`` regions, each direction additionally filtered
   by its own gcd lattice; all directions infeasible proves
   independence.
6. **enumeration** — the pre-existing bounded sweeps (identical
   budgets), flagged as a *fallback* so the rule engine can surface
   that the symbolic provers gave up (MEA017).

Provers 1-5 only ever *prove* facts (they never guess), so running
them before enumeration reproduces every verdict the old enumeration
produced, with strictly fewer ``unknown`` answers. Loop variables
range over the iteration box; other symbols (runtime scalars) are
*iteration-invariant*: they take the same unknown value on both sides
of a cross-iteration query, so equal coefficients cancel exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.compiler.affine import Affine
from repro.compiler.analysis.ranges import (TOP, Interval,
                                            affine_interval)

#: Enumeration budgets — identical to the historical alias.py sweeps.
_MAX_POINTS = 4096          # full iteration-space pair sweeps
_MAX_DELTAS = 30000         # iteration-difference sweeps
#: Direction-vector cap: 3^k combinations for k participating vars.
_MAX_DIR_VARS = 8


@dataclass(frozen=True)
class DepVerdict:
    """Outcome of one dependence query.

    ``relation`` is ``disjoint`` / ``exact`` / ``overlap`` /
    ``unknown``; ``prover`` names the test that decided (``none`` when
    nothing did); ``fallback`` is True when the symbolic tower was
    inconclusive and enumeration (or nothing) had to decide — the
    rule engine reports those as MEA017.
    """

    relation: str
    prover: str
    fallback: bool = False

    @property
    def decided(self) -> bool:
        return self.relation != "unknown"


def _substitute_points(aff: Affine,
                       ranges: Mapping[str, Interval]) -> Affine:
    """Fold variables pinned to a single known value into the constant."""
    const = aff.const
    coefs: Dict[str, int] = {}
    for var, coef in aff.coefs.items():
        if not coef:
            continue
        r = ranges.get(var, TOP)
        if r.is_point and r.lo is not None:
            const += coef * r.lo
        else:
            coefs[var] = coef
    return Affine(const=const, coefs=coefs)


def _residue_hits(lo: Optional[int], hi: Optional[int],
                  anchor: int, g: int) -> bool:
    """Does [lo, hi] contain an integer congruent to anchor mod g?

    ``g == 0`` means the value is exactly ``anchor``; ``None`` bounds
    are infinite.
    """
    if lo is not None and hi is not None and lo > hi:
        return False
    if g == 0:
        return ((lo is None or anchor >= lo)
                and (hi is None or anchor <= hi))
    if lo is None or hi is None:
        return True
    first = lo + ((anchor - lo) % g)
    return first <= hi


# -- same-iteration queries ---------------------------------------------------

def same_iteration_verdict(a_off: Affine, a_ext: int,
                           b_off: Affine, b_ext: int,
                           ranges: Mapping[str, Interval],
                           allow_enumeration: bool = True
                           ) -> DepVerdict:
    """Can intervals ``[a, a+ea)`` and ``[b, b+eb)`` overlap at one
    iteration point? ``exact`` means provably the identical interval.
    """
    if a_ext <= 0 or b_ext <= 0:
        return DepVerdict("disjoint", "trivial")
    window = Interval(-(b_ext - 1), a_ext - 1)
    d = _substitute_points(b_off.sub(a_off), ranges)
    if d.is_constant:
        if d.const == 0 and a_ext == b_ext:
            return DepVerdict("exact", "constant-distance")
        rel = "overlap" if window.contains(d.const) else "disjoint"
        return DepVerdict(rel, "constant-distance")

    span = affine_interval(d, ranges)
    feasible = window.meet(span)
    if feasible.is_empty:
        return DepVerdict("disjoint", "interval-bounds")
    g = 0
    for coef in d.coefs.values():
        g = math.gcd(g, abs(coef))
    if not _residue_hits(feasible.lo, feasible.hi, d.const, g):
        return DepVerdict("disjoint", "gcd")

    if allow_enumeration:
        swept = _sweep_affine(d, ranges, window)
        if swept is not None:
            return DepVerdict(swept, "enumeration", fallback=True)
    return DepVerdict("unknown", "none", fallback=True)


def _sweep_affine(d: Affine, ranges: Mapping[str, Interval],
                  window: Interval) -> Optional[str]:
    """Exact bounded sweep of a single affine against a window."""
    live = [(v, c) for v, c in d.coefs.items() if c]
    rs = [ranges.get(v, TOP) for v, _ in live]
    if not all(r.is_bounded for r in rs):
        return None
    size = 1
    for r in rs:
        size *= r.width() or 1
    if size > _MAX_POINTS:
        return None
    assert all(r.lo is not None and r.hi is not None for r in rs)
    for values in product(*(range(r.lo, r.hi + 1)  # type: ignore[arg-type, operator]
                            for r in rs)):
        total = d.const + sum(c * x
                              for (_, c), x in zip(live, values))
        if window.contains(total):
            return "overlap"
    return "disjoint"


# -- cross-iteration queries --------------------------------------------------

def _mixed_radix_disjoint(offset: Affine, extent: int,
                          loop_ranges: Mapping[str, Interval]
                          ) -> Optional[bool]:
    """Mixed-radix proof that distinct iterations yield disjoint
    intervals. True = proven disjoint, False = proven overlapping,
    None = the argument does not apply."""
    if extent <= 0:
        return True
    active: List[Tuple[int, int]] = []
    for var, r in loop_ranges.items():
        width = r.width()
        if width is not None and width <= 1:
            continue
        coef = offset.coef(var)
        if coef == 0:
            # two distinct iterations share the identical interval —
            # but only provably so when the variable really varies
            return False if width is not None else None
        if width is None:
            return None
        active.append((abs(coef), width))
    span = extent
    for level, (coef, width) in enumerate(sorted(active)):
        if coef < span:
            if level == 0:
                # two iterations one apart in the smallest-stride var
                # sit |coef| < extent bytes apart: provable collision
                return False
            return None           # strides interleave; proof fails
        span = coef * (width - 1) + span
    return True


def _lt_extremes(a: int, b: int, r: Interval) -> Interval:
    """Interval of ``b*v' - a*v`` over ``lo <= v < v' <= hi``.

    Exact for bounded ranges (linear objective over the lattice
    triangle peaks at its three corner points); a conservative
    independent-bounds superset otherwise.
    """
    if r.lo is None or r.hi is None:
        return r.scale(b).add(r.scale(-a))
    lo, hi = r.lo, r.hi
    vals = [b * vp - a * v
            for v, vp in ((lo, lo + 1), (lo, hi), (hi - 1, hi))]
    return Interval(min(vals), max(vals))


def _gt_extremes(a: int, b: int, r: Interval) -> Interval:
    """Interval of ``b*v' - a*v`` over ``lo <= v' < v <= hi``."""
    if r.lo is None or r.hi is None:
        return r.scale(b).add(r.scale(-a))
    lo, hi = r.lo, r.hi
    vals = [b * vp - a * v
            for v, vp in ((lo + 1, lo), (hi, lo), (hi, hi - 1))]
    return Interval(min(vals), max(vals))


def cross_iteration_verdict(w_off: Affine, w_ext: int,
                            f_off: Affine, f_ext: int,
                            loop_ranges: Mapping[str, Interval],
                            invariant_ranges: Optional[
                                Mapping[str, Interval]] = None,
                            allow_enumeration: bool = True
                            ) -> DepVerdict:
    """Can ``w`` at one iteration touch ``f`` at a *different* one?

    ``loop_ranges`` is the (ordered) iteration box; every other symbol
    in the offsets is iteration-invariant and constrained only by
    ``invariant_ranges`` (absent = unbounded).
    """
    inv = dict(invariant_ranges or {})
    if w_ext <= 0 or f_ext <= 0:
        return DepVerdict("disjoint", "trivial")
    space: Optional[int] = 1
    for r in loop_ranges.values():
        width = r.width()
        if width == 0:
            return DepVerdict("disjoint", "trivial")
        space = None if (space is None or width is None) \
            else space * width
    if space is not None and space <= 1:
        return DepVerdict("disjoint", "trivial")

    window = Interval(-(f_ext - 1), w_ext - 1)
    all_ranges: Dict[str, Interval] = {**inv, **loop_ranges}
    dd = _substitute_points(f_off.sub(w_off), all_ranges)
    if dd.is_constant and dd.const == 0 and w_ext == f_ext:
        proved = _mixed_radix_disjoint(w_off, w_ext, loop_ranges)
        if proved is not None:
            return DepVerdict("disjoint" if proved else "overlap",
                              "mixed-radix")

    for use_bounds, prover in ((False, "gcd"), (True, "banerjee")):
        if _all_directions_infeasible(w_off, f_off, window,
                                      loop_ranges, inv, use_bounds):
            return DepVerdict("disjoint", prover)

    if allow_enumeration:
        swept = _cross_enumerate(w_off, f_off, window, loop_ranges,
                                 all_ranges, dd)
        if swept is not None:
            return DepVerdict(swept, "enumeration", fallback=True)
    return DepVerdict("unknown", "none", fallback=True)


def _all_directions_infeasible(w_off: Affine, f_off: Affine,
                               window: Interval,
                               loop_ranges: Mapping[str, Interval],
                               inv: Mapping[str, Interval],
                               use_bounds: bool) -> bool:
    """Banerjee-style direction-vector test.

    ``d = f(i') - w(i)`` decomposes per loop variable into ``<`` / ``=``
    / ``>`` direction contributions; the all-``=`` vector is excluded
    (that is the same-iteration case) unless distinctness can come from
    a variable neither offset depends on. True means *no* direction
    vector can put ``d`` inside the window — the accesses are provably
    independent across iterations.
    """
    anchor = f_off.const - w_off.const
    base_g = 0
    base_span = Interval.point(0)
    relevant: List[Tuple[int, int, Interval]] = []
    free_distinct = False
    for var, r in loop_ranges.items():
        a, b = w_off.coef(var), f_off.coef(var)
        width = r.width()
        if a == 0 and b == 0:
            if width is None or width >= 2:
                free_distinct = True
            continue
        if width == 1:
            assert r.lo is not None
            anchor += (b - a) * r.lo
            continue
        relevant.append((a, b, r))
    for var in dict.fromkeys(list(w_off.coefs) + list(f_off.coefs)):
        if var in loop_ranges:
            continue
        delta = f_off.coef(var) - w_off.coef(var)
        if delta == 0:
            continue                # invariant symbol cancels exactly
        r = inv.get(var, TOP)
        if r.is_point and r.lo is not None:
            anchor += delta * r.lo
        else:
            base_g = math.gcd(base_g, abs(delta))
            base_span = base_span.add(r.scale(delta))
    if len(relevant) > _MAX_DIR_VARS:
        return False

    for combo in product("<=>", repeat=len(relevant)):
        if not free_distinct and all(c == "=" for c in combo):
            continue
        g = base_g
        span = base_span
        for (a, b, r), direction in zip(relevant, combo):
            if direction == "=":
                delta = b - a
                g = math.gcd(g, abs(delta))
                span = span.add(r.scale(delta))
            else:
                g = math.gcd(g, math.gcd(abs(a), abs(b)))
                span = span.add(_lt_extremes(a, b, r)
                                if direction == "<"
                                else _gt_extremes(a, b, r))
        feasible = window.meet(span.shift(anchor)) if use_bounds \
            else window
        if _residue_hits(feasible.lo, feasible.hi, anchor, g):
            return False            # this direction might carry it
    return True


def _box_points(names: List[str], rs: List[Interval]
                ) -> Iterator[Dict[str, int]]:
    assert all(r.lo is not None and r.hi is not None for r in rs)
    for values in product(*(range(r.lo, r.hi + 1)  # type: ignore[arg-type, operator]
                            for r in rs)):
        yield dict(zip(names, values))


def _cross_enumerate(w_off: Affine, f_off: Affine, window: Interval,
                     loop_ranges: Mapping[str, Interval],
                     all_ranges: Mapping[str, Interval],
                     dd: Affine) -> Optional[str]:
    """The historical bounded sweeps, unchanged budgets.

    Tries the iteration-difference scan first (valid when both offsets
    share one stride vector), then the full pair sweep. Returns None
    when neither fits its budget (or ranges are unbounded).
    """
    # (a) common stride vector: scan iteration differences
    if dd.is_constant:
        scan: List[Tuple[int, int]] = []        # (coef, width)
        free_distinct = False
        bounded = True
        for var, r in loop_ranges.items():
            width = r.width()
            if width is not None and width <= 1:
                continue
            coef = w_off.coef(var)
            if coef == 0:
                free_distinct = True
                continue
            if width is None:
                bounded = False
                break
            scan.append((coef, width))
        if bounded:
            size = 1
            for _, width in scan:
                size *= 2 * width - 1
            if size <= _MAX_DELTAS:
                for deltas in product(*(range(-(width - 1), width)
                                        for _, width in scan)):
                    if not any(deltas) and not free_distinct:
                        continue
                    shift = dd.const + sum(
                        c * dv for (c, _), dv in zip(scan, deltas))
                    if window.contains(shift):
                        return "overlap"
                return "disjoint"

    # (b) full pair sweep over the iteration box
    w_r = _substitute_points(w_off, all_ranges)
    f_r = _substitute_points(f_off, all_ranges)
    live = [v for v in loop_ranges
            if w_r.coef(v) or f_r.coef(v)]
    for aff in (w_r, f_r):
        if any(v not in loop_ranges for v, c in aff.coefs.items()
               if c):
            return None             # unbounded invariant symbol left
    rs = [loop_ranges[v] for v in live]
    if not all(r.is_bounded for r in rs):
        return None
    size = 1
    for r in rs:
        size *= r.width() or 1
    if size * size > _MAX_POINTS:
        return None
    free_distinct = any(
        (r.width() or 2) >= 2 for v, r in loop_ranges.items()
        if v not in live)
    points = list(_box_points(live, rs))
    for i, pi in enumerate(points):
        wi = w_r.evaluate(pi)
        for j, pj in enumerate(points):
            if i == j and not free_distinct:
                continue
            if window.contains(f_r.evaluate(pj) - wi):
                return "overlap"
    return "disjoint"
