"""Structured compiler diagnostics.

Every problem the compiler or the static-analysis framework can report
is a :class:`Diagnostic`: a stable ``MEA0xx`` code, a severity, a
message, the buffers involved, and a real source location (line/column
threaded from the lexer tokens through the parser). Reports aggregate
diagnostics, render them for humans, and serialise to JSON for CI.

Stable rule codes
-----------------

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
MEA001    error     use of a heap buffer before its ``malloc``
MEA002    error     in-place alias on an accelerated call
MEA003    error     use of a buffer after ``free``
MEA004    error     double ``free``
MEA005    error     loop-carried dependence blocks loop compaction
MEA006    error     FFTW plan executed after ``fftwf_destroy_plan``
MEA007    warning   dead buffer: allocated but never consumed
MEA008    error     write-write race under ``omp parallel for``
MEA009    error     read-write race under ``omp parallel for``
MEA010    error     unrecognized reduction under a parallel loop
                    (at ``info`` severity: a *recognized* reduction —
                    offloadable, the LOOP descriptor serialises it)
MEA011    error     effect summary unavailable (recursive / escaping);
                    accelerated calls demote conservatively
MEA012    error     interprocedural lifecycle mismatch (violation
                    reached through a user-defined function call)
MEA013    error     recognition failure (unsupported library use)
MEA014    error     semantic-analysis failure (non-constant, alias form)
MEA015    error     static out-of-bounds: an accelerated call's
                    footprint provably exceeds the allocated byte
                    interval (program rejected)
MEA016    warning   possibly out of bounds: the derived value ranges
                    cannot prove the footprint stays inside the
                    allocation (call demoted to the host)
MEA017    info      a symbolic dependence prover gave up and the
                    verdict fell back to bounded enumeration (or
                    stayed unknown)
MEA018    info      schedule rewrite applied (fuse/reorder/split),
                    naming the primitive and the prover that
                    discharged its legality obligations
MEA019    info      schedule rewrite candidate rejected, naming the
                    blocking dependence or missing proof
========  ========  ====================================================
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a finding is; ``ERROR`` blocks offload."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SourceLoc:
    """A 1-based (line, column) position in the analysed source."""

    line: int
    col: int = 0

    def __str__(self) -> str:
        if self.col:
            return f"line {self.line}, col {self.col}"
        return f"line {self.line}"


#: Human-readable one-liner per stable code (kept in sync with the
#: table above and DESIGN.md).
CODE_TITLES: Dict[str, str] = {
    "MEA001": "use-before-init",
    "MEA002": "in-place alias on accelerated call",
    "MEA003": "use-after-free",
    "MEA004": "double-free",
    "MEA005": "loop-carried dependence blocks collapse",
    "MEA006": "FFTW plan executed after destroy",
    "MEA007": "dead buffer never consumed",
    "MEA008": "write-write race under parallel loop",
    "MEA009": "read-write race under parallel loop",
    "MEA010": "reduction under parallel loop",
    "MEA011": "effect summary unavailable",
    "MEA012": "interprocedural lifecycle mismatch",
    "MEA013": "recognition failure",
    "MEA014": "semantic-analysis failure",
    "MEA015": "static out-of-bounds footprint",
    "MEA016": "possibly out-of-bounds footprint",
    "MEA017": "dependence prover fallback",
    "MEA018": "schedule rewrite applied",
    "MEA019": "schedule rewrite rejected",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the safety checker or the frontend."""

    code: str
    severity: Severity
    message: str
    loc: Optional[SourceLoc] = None
    buffers: Tuple[str, ...] = ()
    #: index of the offending step in the recognizer schedule, when the
    #: finding is attached to a specific call site (drives demotion).
    step_index: Optional[int] = None
    #: user-defined-function call chain the finding was reached
    #: through, outermost call first (empty for intra-procedural
    #: findings).
    chain: Tuple[str, ...] = ()
    #: name of the dependence prover backing (or failing to back) the
    #: finding — ``"gcd"``, ``"banerjee"``, ``"mixed-radix"``,
    #: ``"interval-bounds"``, ``"constant-distance"``,
    #: ``"enumeration"``, or ``"none"``. Empty for findings no prover
    #: was involved in.
    prover: str = ""

    @property
    def title(self) -> str:
        return CODE_TITLES.get(self.code, self.code)

    def format(self) -> str:
        where = f"{self.loc}: " if self.loc is not None else ""
        bufs = (f" [{', '.join(self.buffers)}]" if self.buffers else "")
        via = (" (via " + " -> ".join(("main",) + self.chain) + ")"
               if self.chain else "")
        return (f"{where}{self.severity}: {self.code} {self.title}: "
                f"{self.message}{via}{bufs}")

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "code": self.code,
            "severity": str(self.severity),
            "title": self.title,
            "message": self.message,
            "buffers": list(self.buffers),
        }
        if self.loc is not None:
            out["line"] = self.loc.line
            out["col"] = self.loc.col
        if self.step_index is not None:
            out["step_index"] = self.step_index
        if self.chain:
            out["chain"] = list(self.chain)
        if self.prover:
            out["prover"] = self.prover
        return out

    def sort_key(self) -> Tuple[int, int, int, str, str]:
        """Deterministic ordering: (line, col, code, message).

        Findings without a source location sort last; ties break on
        the stable code and then the message text, so report order is
        identical across runs regardless of rule execution order.
        """
        if self.loc is None:
            return (1, 0, 0, self.code, self.message)
        return (0, self.loc.line, self.loc.col, self.code, self.message)


@dataclass
class DiagnosticReport:
    """Ordered collection of diagnostics for one translation unit."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def sort(self) -> "DiagnosticReport":
        """Sort findings in place by (line, col, code); returns self.

        Emission order depends on which rule ran first; sorting makes
        ``--json`` output and test fixtures stable across runs.
        """
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def format(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(d.format() for d in self.diagnostics)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "mea-analysis/v1",
            "error_count": len(self.errors()),
            "warning_count": len(self.warnings()),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
