"""Affine expressions over loop variables.

The loop-compaction pass needs every pointer argument of a nested
library call as ``base + sum(coef_v * v)`` in *bytes*: the constant part
seeds the descriptor's parameter record, the coefficients become the
LOOP stride table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping


class AffineError(Exception):
    """Raised when an expression is not affine in the loop variables."""


@dataclass(frozen=True)
class Affine:
    """const + sum(coefs[v] * v) with integer coefficients."""

    const: int = 0
    coefs: Mapping[str, int] = field(default_factory=dict)

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine(const=int(value))

    @staticmethod
    def var(name: str) -> "Affine":
        return Affine(const=0, coefs={name: 1})

    @property
    def is_constant(self) -> bool:
        return not any(self.coefs.values())

    def add(self, other: "Affine") -> "Affine":
        coefs: Dict[str, int] = dict(self.coefs)
        for name, coef in other.coefs.items():
            coefs[name] = coefs.get(name, 0) + coef
        return Affine(const=self.const + other.const,
                      coefs={k: v for k, v in coefs.items() if v})

    def sub(self, other: "Affine") -> "Affine":
        return self.add(other.scale(-1))

    def scale(self, factor: int) -> "Affine":
        return Affine(const=self.const * factor,
                      coefs={k: v * factor
                             for k, v in self.coefs.items() if v * factor})

    def mul(self, other: "Affine") -> "Affine":
        if self.is_constant:
            return other.scale(self.const)
        if other.is_constant:
            return self.scale(other.const)
        raise AffineError("product of two loop-variant expressions is "
                          "not affine")

    def coef(self, var: str) -> int:
        return self.coefs.get(var, 0)

    def evaluate(self, values: Mapping[str, int]) -> int:
        total = self.const
        for name, coef in self.coefs.items():
            if coef:
                if name not in values:
                    raise AffineError(f"unbound loop variable {name!r}")
                total += coef * values[name]
        return total
