"""Tokeniser for the C subset.

Comments are stripped, ``#define`` lines become define records, and
``#pragma omp parallel for`` lines become pragma tokens attached to the
stream so the parser can mark the following loop.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.compiler.cast import CParseError

#: Multi-character operators, longest first.
_OPERATORS = ("<<=", ">>=", "++", "--", "+=", "-=", "*=", "/=", "<=",
              ">=", "==", "!=", "&&", "||")

_PUNCT = set("()[]{};,&*+-/%<>=!")

_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"(\d+\.\d*([eE][+-]?\d+)?[fF]?|\.\d+[fF]?|"
                     r"\d+([eE][+-]?\d+)?[fFuUlL]*|0[xX][0-9a-fA-F]+)")


@dataclass(frozen=True)
class Token:
    kind: str          # 'id' | 'num' | 'op' | 'pragma'
    text: str
    line: int
    col: int = 0       # 1-based column in the original source line


def _strip_comments(source: str) -> str:
    source = re.sub(r"/\*.*?\*/", lambda m: "\n" * m.group(0).count("\n"),
                    source, flags=re.S)
    return re.sub(r"//[^\n]*", "", source)


def tokenize(source: str) -> Tuple[List[Token], List[Tuple[str, str]]]:
    """Return (tokens, defines). Defines are raw (name, value) strings."""
    tokens: List[Token] = []
    defines: List[Tuple[str, str]] = []
    for lineno, raw_line in enumerate(_strip_comments(source).splitlines(),
                                      start=1):
        line = raw_line
        stripped = line.strip()
        if stripped.startswith("#define"):
            parts = stripped.split(None, 2)
            if len(parts) != 3:
                raise CParseError(
                    f"line {lineno}: malformed #define {stripped!r}")
            defines.append((parts[1], parts[2]))
            continue
        if stripped.startswith("#pragma"):
            if "omp" in stripped and "parallel" in stripped \
                    and "for" in stripped:
                col = len(line) - len(line.lstrip()) + 1
                tokens.append(Token("pragma", stripped, lineno, col))
            continue
        pos = 0
        while pos < len(line):
            ch = line[pos]
            if ch.isspace():
                pos += 1
                continue
            col = pos + 1
            id_match = _ID_RE.match(line, pos)
            if id_match:
                tokens.append(Token("id", id_match.group(0), lineno, col))
                pos = id_match.end()
                continue
            num_match = _NUM_RE.match(line, pos)
            if num_match:
                tokens.append(Token("num", num_match.group(0), lineno,
                                    col))
                pos = num_match.end()
                continue
            for op in _OPERATORS:
                if line.startswith(op, pos):
                    tokens.append(Token("op", op, lineno, col))
                    pos += len(op)
                    break
            else:
                if ch in _PUNCT:
                    tokens.append(Token("op", ch, lineno, col))
                    pos += 1
                else:
                    raise CParseError(
                        f"line {lineno}: unexpected character {ch!r}")
    return tokens, defines


def parse_number(text: str) -> Union[int, float]:
    """Convert a numeric literal token to int or float."""
    cleaned = text.rstrip("fFuUlL")
    if cleaned.startswith(("0x", "0X")):
        return int(cleaned, 16)
    if any(c in cleaned for c in ".eE") and not cleaned.startswith("0x"):
        return float(cleaned)
    return int(cleaned)
