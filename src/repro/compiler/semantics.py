"""Compile-time semantics: constants, buffers, plans, address analysis.

Pass 1 of the paper's compiler needs to know, statically, every buffer's
element type and extent (from declarations and ``malloc`` sizes), the
value of every size constant (from ``#define`` and const-int
initialisers), the contents of ``fftw_iodim`` initialisers, and the
affine form of every pointer argument. This module builds that
environment by one sweep over the AST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.compiler.affine import Affine, AffineError
from repro.compiler.cast import (AddrOf, Assign, BinOp, Call, CParseError,
                                 Expr, ExprStmt, For, Ident, Index,
                                 InitList, Num, Program, Sizeof, Stmt,
                                 VarDecl)
from repro.compiler.cparser import TYPE_KEYWORDS
from repro.compiler.errors import CompilerError

#: Well-known constants legacy sources reference.
BUILTIN_CONSTANTS = {
    "NULL": 0,
    "FFTW_FORWARD": -1,
    "FFTW_BACKWARD": 1,
    "FFTW_WISDOM_ONLY": 0,
    "FFTW_ESTIMATE": 0,
    "CblasRowMajor": 101,
    "CblasColMajor": 102,
    "CblasNoTrans": 111,
    "CblasTrans": 112,
    "CblasConjTrans": 113,
    "CblasUpper": 121,
    "CblasLower": 122,
}


#: A compile-time constant value: integer sizes/strides, or float
#: coefficients like AXPY's ``alpha``.
Number = Union[int, float]


class SemanticError(CompilerError):
    """Raised when the compiler cannot analyse a construct.

    A typed diagnostic (code ``MEA014``) with an optional source
    location; ``str(exc)`` keeps the legacy bare-message shape.
    """

    default_code = "MEA014"


@dataclass
class BufferInfo:
    """One data buffer the program owns."""

    name: str
    elem_type: str
    elem_size: int
    count: int                       # elements
    shape: Optional[Tuple[int, ...]] = None
    heap: bool = False               # malloc'ed (True) vs declared array

    @property
    def total_bytes(self) -> int:
        return self.count * self.elem_size

    def row_strides(self) -> Tuple[int, ...]:
        """Element stride of each dimension (row-major)."""
        if self.shape is None:
            return (1,)
        strides = [1] * len(self.shape)
        for i in range(len(self.shape) - 2, -1, -1):
            strides[i] = strides[i + 1] * self.shape[i + 1]
        return tuple(strides)


@dataclass
class IoDimSpec:
    n: int
    istride: int
    ostride: int


@dataclass
class PlanSpec:
    """A recorded fftwf_plan_guru_dft call."""

    name: str
    rank: int
    dims: List[IoDimSpec]
    howmany: List[IoDimSpec]
    src: str                          # buffer name
    src_offset: int
    dst: str
    dst_offset: int
    sign: int


@dataclass
class CompileEnv:
    """Everything pass 1 learned about the translation unit."""

    constants: Dict[str, int] = field(default_factory=dict)
    buffers: Dict[str, BufferInfo] = field(default_factory=dict)
    iodims: Dict[str, List[IoDimSpec]] = field(default_factory=dict)
    plans: Dict[str, PlanSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, value in BUILTIN_CONSTANTS.items():
            self.constants.setdefault(name, value)

    # -- constant evaluation -------------------------------------------------

    def eval_const(self, expr: Expr) -> Union[int, float]:
        """Evaluate a compile-time-constant expression.

        Integer arithmetic stays integral (``/`` floor-divides); a
        float anywhere (``0.5``-style coefficients) makes the result a
        float.
        """
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, Ident):
            if expr.name in self.constants:
                return self.constants[expr.name]
            raise SemanticError(f"{expr.name!r} is not a compile-time "
                                "constant")
        if isinstance(expr, Sizeof):
            return TYPE_KEYWORDS[expr.ctype]
        if isinstance(expr, BinOp):
            left = self.eval_const(expr.left)
            right = self.eval_const(expr.right)
            ops: Dict[str, Callable[[Number, Number], Number]] = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b if isinstance(a, int)
                and isinstance(b, int) else a / b,
                "%": lambda a, b: a % b,
            }
            if expr.op not in ops:
                raise SemanticError(f"operator {expr.op!r} in constant "
                                    "expression")
            return ops[expr.op](left, right)
        raise SemanticError(f"expression {expr!r} is not constant")

    # -- affine address analysis ------------------------------------------

    def affine_expr(self, expr: Expr) -> Affine:
        """Affine (in loop variables) value of an index expression."""
        if isinstance(expr, Num):
            return Affine.constant(int(expr.value))
        if isinstance(expr, Ident):
            if expr.name in self.constants:
                return Affine.constant(self.constants[expr.name])
            return Affine.var(expr.name)       # a loop variable
        if isinstance(expr, Sizeof):
            return Affine.constant(TYPE_KEYWORDS[expr.ctype])
        if isinstance(expr, BinOp):
            left = self.affine_expr(expr.left)
            right = self.affine_expr(expr.right)
            if expr.op == "+":
                return left.add(right)
            if expr.op == "-":
                return left.sub(right)
            if expr.op == "*":
                return left.mul(right)
            if expr.op in ("/", "%") and right.is_constant \
                    and left.is_constant:
                value = (left.const // right.const if expr.op == "/"
                         else left.const % right.const)
                return Affine.constant(value)
            raise AffineError(f"non-affine operator {expr.op!r}")
        raise AffineError(f"non-affine expression {expr!r}")

    def buffer_address(self, expr: Expr) -> Tuple[str, Affine]:
        """Resolve a pointer argument to (buffer name, byte offset).

        Accepts ``buf``, ``&buf[i]...``, and ``buf + k`` forms.
        """
        if isinstance(expr, Ident):
            buf = self._buffer(expr.name)
            return buf.name, Affine.constant(0)
        if isinstance(expr, AddrOf):
            return self._indexed_address(expr.operand)
        if isinstance(expr, BinOp) and expr.op == "+":
            name, base = self.buffer_address(expr.left)
            buf = self._buffer(name)
            delta = self.affine_expr(expr.right).scale(buf.elem_size)
            return name, base.add(delta)
        if isinstance(expr, Index):
            # bare buf[i] used as a pointer (1 level off a 2D+ buffer)
            return self._indexed_address(expr, partial_ok=True)
        raise SemanticError(f"cannot resolve {expr!r} to a buffer "
                            "address")

    def _indexed_address(self, expr: Expr,
                         partial_ok: bool = False) -> Tuple[str, Affine]:
        indices: List[Expr] = []
        node = expr
        while isinstance(node, Index):
            indices.append(node.idx)
            node = node.base
        indices.reverse()
        if not isinstance(node, Ident):
            raise SemanticError("address-of must apply to an array "
                                "element")
        buf = self._buffer(node.name)
        strides = buf.row_strides()
        if buf.shape is not None and len(indices) > len(buf.shape):
            raise SemanticError(f"too many subscripts on {buf.name!r}")
        if buf.shape is None and len(indices) != 1:
            raise SemanticError(f"{buf.name!r} is a flat buffer; use one "
                                "subscript")
        offset = Affine.constant(0)
        for dim, idx in enumerate(indices):
            offset = offset.add(self.affine_expr(idx).scale(strides[dim]))
        return buf.name, offset.scale(buf.elem_size)

    def _buffer(self, name: str) -> BufferInfo:
        try:
            return self.buffers[name]
        except KeyError:
            raise SemanticError(f"unknown buffer {name!r}")


def _decl_iodims(env: CompileEnv, decl: VarDecl) -> None:
    if not isinstance(decl.init, InitList):
        raise SemanticError(f"fftw_iodim {decl.name!r} needs an "
                            "initialiser list", loc=decl.loc)
    entries: List[IoDimSpec] = []
    items: Sequence[Expr] = decl.init.items
    # accept both {{a,b,c},...} and a flat {a,b,c} for one dim
    if items and not isinstance(items[0], InitList):
        items = (InitList(items=tuple(items)),)
    for item in items:
        if not isinstance(item, InitList) or len(item.items) != 3:
            raise SemanticError("fftw_iodim initialiser entries must be "
                                "{n, is, os}", loc=decl.loc)
        n, istride, ostride = (int(env.eval_const(e))
                               for e in item.items)
        entries.append(IoDimSpec(n=n, istride=istride, ostride=ostride))
    env.iodims[decl.name] = entries


def build_env(program: Program) -> CompileEnv:
    """Pass 1, step 1: sweep declarations/defines into a CompileEnv.

    malloc assignments and plan creations are handled later, in
    statement order, by the recognizer (they may depend on constants
    declared above them); this builds everything declaration-driven.
    """
    env = CompileEnv()
    for name, value in program.defines:
        env.constants[name] = value

    def visit(stmts: Sequence[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, VarDecl):
                _register_decl(env, stmt)
            elif isinstance(stmt, For):
                visit(stmt.body)

    visit(program.stmts)
    return env


def _register_decl(env: CompileEnv, decl: VarDecl) -> None:
    if decl.ctype == "fftw_iodim":
        _decl_iodims(env, decl)
        return
    if decl.ctype == "fftwf_plan":
        return                          # bound at plan-call time
    if decl.dims:
        shape = tuple(int(env.eval_const(d)) for d in decl.dims)
        count = 1
        for d in shape:
            count *= d
        env.buffers[decl.name] = BufferInfo(
            name=decl.name, elem_type=decl.ctype,
            elem_size=TYPE_KEYWORDS[decl.ctype], count=count, shape=shape)
        return
    if decl.pointer:
        # heap buffer: extent learned at its malloc site
        env.buffers[decl.name] = BufferInfo(
            name=decl.name, elem_type=decl.ctype,
            elem_size=TYPE_KEYWORDS[decl.ctype], count=0, heap=True)
        return
    if decl.ctype in ("int", "long", "size_t") and decl.init is not None:
        try:
            env.constants[decl.name] = int(env.eval_const(decl.init))
        except SemanticError:
            pass                        # runtime int, not a constant
