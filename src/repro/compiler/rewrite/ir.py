"""Rewrite-layer IR: fused steps and the rewrite decision log.

The rewrite engine (:mod:`.engine`) operates on the recognizer's step
list and produces two artefacts:

* :class:`FusedStep` — several accelerated calls proven to form one
  datapath-chained PASS (``PASS { COMP a COMP b }``, or ``LOOP n {
  PASS { ... } }`` when the members are looped).  Unlike the purely
  syntactic :class:`~repro.compiler.passes.ChainStep`, a FusedStep may
  carry a loop: the legality checker proved every iteration's
  producer->consumer linkage exact and the fused interleaving free of
  carried dependences, so the intermediate buffer skips its DRAM
  round-trip on *every* iteration.
* :class:`RewriteDecision` — one audit record per considered rewrite,
  applied (MEA018) or rejected (MEA019), naming the primitive, the
  prover that discharged (or the dependence that blocked) it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.compiler.diagnostics import Diagnostic, Severity, SourceLoc
from repro.compiler.recognizer import AccelCallStep

if TYPE_CHECKING:
    from repro.compiler.analysis.certificates import SafetyCertificate
    from repro.compiler.semantics import CompileEnv


@dataclass(frozen=True)
class FusedStep:
    """Accelerated calls fused into one (possibly looped) PASS.

    ``steps`` run in datapath order: each member's output feeds the
    next member through the tile's local memory, so only the first
    member's reads and the last member's writes touch DRAM (exactly
    how the configuration unit prices a multi-COMP PASS).
    ``intermediates`` are the buffers whose round-trip the fusion
    elides — each is some member's written buffer consumed by the next
    member and proven dead afterwards.
    """

    steps: Tuple[AccelCallStep, ...]
    intermediates: Tuple[str, ...] = ()
    certificate: Optional["SafetyCertificate"] = field(
        default=None, compare=False, repr=False)

    @property
    def accel(self) -> str:
        return "+".join(s.accel for s in self.steps)

    @property
    def trips(self) -> Tuple[int, ...]:
        return self.steps[0].trips

    @property
    def loop_vars(self) -> Tuple[str, ...]:
        return self.steps[0].loop_vars

    @property
    def looped(self) -> bool:
        return bool(self.trips)

    @property
    def iterations(self) -> int:
        total = 1
        for t in self.trips:
            total *= t
        return total

    @property
    def calls(self) -> int:
        return sum(s.calls for s in self.steps)

    @property
    def in_bufs(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for s in self.steps:
            for b in s.in_bufs:
                seen.setdefault(b, None)
        return tuple(seen)

    @property
    def out_bufs(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for s in self.steps:
            for b in s.out_bufs:
                seen.setdefault(b, None)
        return tuple(seen)

    @property
    def loc(self) -> Optional[SourceLoc]:
        return self.steps[0].loc

    def dram_bytes_skipped(self, env: "CompileEnv") -> int:
        """DRAM bytes the fusion elides per full execution.

        For every fused link the producer's write of the intermediate
        and the consumer's read of it both stay in tile-local memory:
        the legality checker proved the linkage byte-exact, so each
        side moves exactly the producer's write extent per iteration.
        """
        from repro.compiler.analysis.alias import step_accesses

        inter = set(self.intermediates)
        skipped = 0
        for producer in self.steps[:-1]:
            for acc in step_accesses(producer, env):
                if acc.writes and acc.buffer in inter:
                    skipped += 2 * acc.extent     # write + re-read
        return skipped * self.iterations


@dataclass(frozen=True)
class RewriteDecision:
    """One considered rewrite: what was tried, and why it (wasn't) ok.

    ``applied`` decisions carry the prover chain that discharged the
    legality obligations (MEA018); rejections carry the blocking
    dependence or missing proof in ``reason`` (MEA019).  Both are
    surfaced through the CLI's ``--json``/``--sarif`` outputs.
    """

    primitive: str                    # "fuse" | "reorder" | "split"
    applied: bool
    steps: Tuple[int, ...]            # original schedule indices
    accels: Tuple[str, ...]
    prover: str = ""
    detail: str = ""
    reason: str = ""
    buffers: Tuple[str, ...] = ()
    loc: Optional[SourceLoc] = None

    @property
    def code(self) -> str:
        return "MEA018" if self.applied else "MEA019"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "primitive": self.primitive,
            "applied": self.applied,
            "code": self.code,
            "steps": list(self.steps),
            "accels": list(self.accels),
        }
        if self.prover:
            out["prover"] = self.prover
        if self.detail:
            out["detail"] = self.detail
        if self.reason:
            out["reason"] = self.reason
        if self.buffers:
            out["buffers"] = list(self.buffers)
        if self.loc is not None:
            out["line"] = self.loc.line
            out["col"] = self.loc.col
        return out

    def diagnostic(self) -> Diagnostic:
        """The decision as a stable-coded INFO finding."""
        chain = "+".join(self.accels)
        if self.applied:
            message = (f"{self.primitive} of {chain}"
                       + (f" ({self.detail})" if self.detail else ""))
        else:
            message = f"{self.primitive} of {chain} — {self.reason}"
        return Diagnostic(code=self.code, severity=Severity.INFO,
                          message=message, loc=self.loc,
                          buffers=self.buffers,
                          step_index=(self.steps[0] if self.steps
                                      else None),
                          prover=self.prover)


def decision_diagnostics(decisions: Tuple[RewriteDecision, ...]
                         ) -> List[Diagnostic]:
    return [d.diagnostic() for d in decisions]
