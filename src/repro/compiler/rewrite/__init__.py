"""Statically-verified schedule rewrites over the recognized IR.

Fuse / reorder / split primitives, each gated by the symbolic
dependence provers and recorded in the step's safety certificate.
See :mod:`.engine` for the driver and :mod:`.legality` for the
obligations each primitive discharges.
"""

from repro.compiler.rewrite.engine import (RewriteConfig, RewriteResult,
                                           rewrite_schedule)
from repro.compiler.rewrite.ir import (FusedStep, RewriteDecision,
                                       decision_diagnostics)
from repro.compiler.rewrite.legality import (LegalityVerdict, fuse_legal,
                                             intermediates_dead,
                                             split_step,
                                             steps_independent)

__all__ = [
    "FusedStep",
    "LegalityVerdict",
    "RewriteConfig",
    "RewriteDecision",
    "RewriteResult",
    "decision_diagnostics",
    "fuse_legal",
    "intermediates_dead",
    "rewrite_schedule",
    "split_step",
    "steps_independent",
]
