"""The legality checker gating every schedule rewrite.

Each primitive of the rewrite engine discharges its obligations here,
through the symbolic dependence tester (:mod:`..analysis.deptest`) and
the alias/footprint machinery (:mod:`..analysis.alias`); nothing is
rewritten on syntax alone.  The obligations per primitive:

*reorder* (swap two steps)
    every (write, any) field pair on a shared buffer is proven
    disjoint — steps touching no common buffer are independent by
    alias partitioning.  Host calls without an address model block the
    swap conservatively.

*fuse* (producer ``a`` -> consumer ``b`` into one PASS)
    1. identical loop shapes (``a.trips == b.trips``);
    2. *linkage exactness* — every buffer the consumer reads is the
       producer's written buffer, and per iteration the consumer reads
       exactly the bytes the producer wrote (so the tile-local chain
       carries the complete operand and skipping the DRAM round-trip
       is value-preserving **and** the pricing model's skipped
       streams are exactly the elided traffic);
    3. *fused-interleaving safety* — for looped fusion the execution
       order changes from ``a_0..a_{n-1}; b_0..b_{n-1}`` to
       ``a_0 b_0 .. a_{n-1} b_{n-1}``: every producer-write vs
       consumer-field pair on a shared buffer must be disjoint across
       *different* iterations (the same-iteration pair keeps its
       original order and needs no new proof);
    4. *intermediate deadness* — no later step may read the linked
       buffer: its DRAM copy is stale after fusion (checked at the
       schedule level, prover ``schedule-liveness``).

*split* (tile one large call across LOOP iterations)
    the partition must be exact (``n % parts == 0``) and the tiled
    step's own carried-dependence freedom is re-proven like any looped
    step.

Every discharged obligation becomes a prover-named
:class:`~repro.compiler.analysis.certificates.CertFact` so the fused
step's :class:`SafetyCertificate` records the complete rewrite proof.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, cast

from repro.compiler.affine import Affine, AffineError
from repro.compiler.analysis.alias import (cross_iteration_verdict,
                                           same_iteration_verdict,
                                           step_accesses, step_ranges)
from repro.compiler.analysis.certificates import CertFact
from repro.compiler.analysis.ranges import Interval, ValueRanges
from repro.compiler.cast import Ident
from repro.compiler.recognizer import (AccelCallStep, AllocStep, FreeStep,
                                       HostCallStep, PlanDestroyStep)
from repro.compiler.rewrite.ir import FusedStep
from repro.compiler.semantics import CompileEnv, SemanticError

#: Prover name for independence established by disjoint buffer sets.
ALIAS_PARTITION = "alias-partition"
#: Prover name for the schedule-level liveness scan.
SCHEDULE_LIVENESS = "schedule-liveness"


@dataclass(frozen=True)
class LegalityVerdict:
    """Outcome of one legality query: proof facts or a blocking reason."""

    ok: bool
    prover: str = ""
    facts: Tuple[CertFact, ...] = ()
    reason: str = ""
    buffers: Tuple[str, ...] = ()


def _renamed(offset: Affine, mapping: Dict[str, str]) -> Affine:
    """``offset`` with loop variables substituted per ``mapping``."""
    return Affine(const=offset.const,
                  coefs={mapping.get(v, v): c
                         for v, c in offset.coefs.items() if c})


def _fresh_mapping(names: Tuple[str, ...],
                   taken: Set[str]) -> Dict[str, str]:
    """A collision-free renaming of ``names`` away from ``taken``."""
    mapping: Dict[str, str] = {}
    for name in names:
        fresh = name
        while fresh in taken or fresh in mapping.values():
            fresh += "'"
        mapping[name] = fresh
    return mapping


def _positional_mapping(src: AccelCallStep,
                        dst: AccelCallStep) -> Dict[str, str]:
    """Map ``src``'s loop variables onto ``dst``'s, position by
    position (callers guarantee equal trip tuples)."""
    return dict(zip(src.loop_vars, dst.loop_vars))


def step_buffers(step: object, env: CompileEnv) -> Optional[Set[str]]:
    """Buffer names a step may touch, ``None`` when unknowable.

    Accelerated (and demoted-accelerated) steps have an exact address
    model; native host calls fall back to resolving each pointer-like
    argument, plus the buffers of any FFTW plan argument.  A host call
    with an argument the environment cannot resolve returns the
    buffers it *could* resolve — safe for alias partitioning because
    the recognizer only accepts whole-program sources whose pointers
    all root in declared or malloc'd buffers.
    """
    if isinstance(step, (AccelCallStep, FusedStep)):
        return set(step.in_bufs) | set(step.out_bufs)
    if isinstance(step, HostCallStep):
        if step.demoted and step.proto is not None:
            return {buf for buf, _ in step.proto.addrs.values()}
        names: Set[str] = set()
        for arg in step.args:
            if isinstance(arg, Ident) and arg.name in env.plans:
                plan = env.plans[arg.name]
                names.add(plan.src)
                names.add(plan.dst)
                continue
            try:
                buf, _ = env.buffer_address(arg)
            except (SemanticError, AffineError):
                continue
            names.add(buf)
        return names
    if isinstance(step, (AllocStep, FreeStep)):
        return {step.buffer}
    if isinstance(step, PlanDestroyStep):
        return set()
    return None


def steps_independent(a: AccelCallStep, b: object, env: CompileEnv,
                      vranges: Optional[ValueRanges] = None
                      ) -> LegalityVerdict:
    """Can ``a`` and ``b`` exchange places in the schedule?

    Independence is symmetric: both orders execute the same reads and
    writes on provably disjoint bytes (or on no common buffer at all).
    """
    bufs_a = step_buffers(a, env)
    bufs_b = step_buffers(b, env)
    if bufs_a is None or bufs_b is None:
        return LegalityVerdict(
            ok=False, reason="a step has no buffer model")
    shared = sorted(bufs_a & bufs_b)
    if not shared:
        return LegalityVerdict(
            ok=True, prover=ALIAS_PARTITION,
            facts=(CertFact("reorder-independent", ALIAS_PARTITION,
                            "no shared buffer"),))
    if isinstance(b, FusedStep):
        facts: List[CertFact] = []
        prover = ALIAS_PARTITION
        for member in b.steps:
            verdict = steps_independent(a, member, env, vranges)
            if not verdict.ok:
                return verdict
            facts.extend(verdict.facts)
            prover = verdict.prover
        return LegalityVerdict(ok=True, prover=prover,
                               facts=tuple(facts))
    if not isinstance(b, AccelCallStep):
        return LegalityVerdict(
            ok=False, buffers=tuple(shared),
            reason=f"shared buffer {shared[0]!r} with a step that "
                   "has no byte-footprint model")

    acc_a = step_accesses(a, env)
    acc_b = step_accesses(b, env)
    ranges_a_loop, inv_a = step_ranges(a, vranges)
    ranges_b_loop, inv_b = step_ranges(b, vranges)
    # alpha-rename b's loop variables away from a's: the two steps
    # iterate independently, so a shared variable name must not be
    # unified (that would compare only the diagonal of the iteration
    # product and could "prove" disjointness that does not hold).
    taken = set(ranges_a_loop) | set(inv_a) | set(inv_b)
    renaming = _fresh_mapping(b.loop_vars, taken)
    ranges = {**inv_a, **inv_b, **ranges_a_loop}
    ranges.update({renaming[v]: r
                   for v, r in ranges_b_loop.items()})

    facts = []
    prover = ALIAS_PARTITION
    for fa in acc_a:
        for fb in acc_b:
            if fa.buffer != fb.buffer:
                continue
            if not (fa.writes or fb.writes):
                continue            # read-read pairs commute freely
            verdict = same_iteration_verdict(
                fa.offset, fa.extent,
                _renamed(fb.offset, renaming), fb.extent, ranges)
            pair = (f"{a.accel} {fa.field} vs {b.accel} {fb.field} "
                    f"on {fa.buffer!r}")
            if verdict.relation != "disjoint":
                return LegalityVerdict(
                    ok=False, prover=verdict.prover,
                    buffers=(fa.buffer,),
                    reason=f"dependence {pair} "
                           f"({verdict.relation})")
            facts.append(CertFact("reorder-independent",
                                  verdict.prover, pair))
            prover = verdict.prover
    return LegalityVerdict(ok=True, prover=prover, facts=tuple(facts))


def fuse_legal(producer: AccelCallStep, consumer: AccelCallStep,
               env: CompileEnv,
               vranges: Optional[ValueRanges] = None
               ) -> Tuple[LegalityVerdict, Tuple[str, ...]]:
    """Obligations 1-3 of fusion (deadness is the engine's scan).

    Returns the verdict and the linked intermediate buffers.
    """
    if producer.trips != consumer.trips:
        return LegalityVerdict(
            ok=False,
            reason=f"loop shapes differ ({producer.accel} "
                   f"trips={producer.trips}, {consumer.accel} "
                   f"trips={consumer.trips})"), ()
    if producer.omp or consumer.omp:
        return LegalityVerdict(
            ok=False, reason="OpenMP-collapsed steps keep their own "
                             "descriptor"), ()

    acc_p = step_accesses(producer, env)
    acc_c = step_accesses(consumer, env)
    loop_ranges, inv_p = step_ranges(producer, vranges)
    _, inv_c = step_ranges(consumer, vranges)
    invariant = {**inv_p, **inv_c}
    ranges = {**invariant, **loop_ranges}
    onto_producer = _positional_mapping(consumer, producer)

    writes_p = {a.buffer: a for a in acc_p if a.writes}
    facts: List[CertFact] = []

    # obligation 3 first (it names the sharpest failure): fusing a
    # looped pair interleaves the iterations (a_0 b_0 .. instead of
    # a_0..a_{n-1} b_0..); only *cross*-iteration producer/consumer
    # pairs change relative order, so each such pair with a write
    # must be proven disjoint.
    if producer.looped and producer.calls > 1:
        for fp in acc_p:
            for fc in acc_c:
                if fp.buffer != fc.buffer:
                    continue
                if not (fp.writes or fc.writes):
                    continue
                verdict = cross_iteration_verdict(
                    fp.offset, fp.extent,
                    _renamed(fc.offset, onto_producer), fc.extent,
                    loop_ranges, invariant)
                pair = (f"{producer.accel} {fp.field} vs "
                        f"{consumer.accel} {fc.field} on "
                        f"{fp.buffer!r}")
                if verdict.relation != "disjoint":
                    return LegalityVerdict(
                        ok=False, prover=verdict.prover,
                        buffers=(fp.buffer,),
                        reason="blocking dependence between fused "
                               f"iterations: {pair} "
                               f"({verdict.relation})"), ()
                facts.append(CertFact(
                    "fuse-cross-iteration-disjoint", verdict.prover,
                    pair))

    # obligation 2: every consumer read is the producer's exact
    # per-iteration output — the datapath chain carries the complete
    # operand, so eliding the DRAM round-trip is value-preserving and
    # the pricing model's skipped streams equal the elided traffic.
    linked: List[str] = []
    for rc in acc_c:
        if not rc.reads:
            continue
        w = writes_p.get(rc.buffer)
        if w is None:
            return LegalityVerdict(
                ok=False, buffers=(rc.buffer,),
                reason=f"{consumer.accel} input {rc.field} on "
                       f"{rc.buffer!r} is not produced by "
                       f"{producer.accel}; its DRAM read cannot be "
                       "elided"), ()
        delta = w.offset.sub(_renamed(rc.offset, onto_producer))
        if not delta.is_constant or delta.const != 0 \
                or w.extent != rc.extent:
            return LegalityVerdict(
                ok=False, prover="constant-distance",
                buffers=(rc.buffer,),
                reason=f"{consumer.accel} input {rc.field} on "
                       f"{rc.buffer!r} is not {producer.accel}'s "
                       "exact per-iteration output (offset distance "
                       f"{delta.const if delta.is_constant else 'symbolic'}, "
                       f"extents {w.extent} vs {rc.extent})"), ()
        facts.append(CertFact(
            "fuse-linkage-exact", "constant-distance",
            f"{producer.accel} {w.field} -> {consumer.accel} "
            f"{rc.field} on {rc.buffer!r}, {w.extent} bytes/iter"))
        if rc.buffer not in linked:
            linked.append(rc.buffer)

    # the consumer's write must not clobber a producer operand within
    # the (order-preserved) shared iteration either
    for wc in (a for a in acc_c if a.writes):
        for fp in acc_p:
            if fp.buffer != wc.buffer or not fp.reads:
                continue
            verdict = same_iteration_verdict(
                fp.offset, fp.extent,
                _renamed(wc.offset, onto_producer), wc.extent,
                ranges)
            pair = (f"{consumer.accel} {wc.field} vs "
                    f"{producer.accel} {fp.field} on {wc.buffer!r}")
            if verdict.relation != "disjoint":
                return LegalityVerdict(
                    ok=False, prover=verdict.prover,
                    buffers=(wc.buffer,),
                    reason=f"consumer write aliases a producer "
                           f"operand: {pair} ({verdict.relation})"), ()
            facts.append(CertFact("fuse-operand-disjoint",
                                  verdict.prover, pair))

    prover = next((f.prover for f in facts
                   if f.kind == "fuse-cross-iteration-disjoint"),
                  "constant-distance")
    return LegalityVerdict(ok=True, prover=prover,
                           facts=tuple(facts)), tuple(linked)


def intermediates_dead(later_steps: List[object],
                       buffers: Tuple[str, ...],
                       env: CompileEnv) -> LegalityVerdict:
    """No step after the consumer may touch a fused-away buffer.

    After fusion the intermediate's DRAM copy is never written, so any
    later read would observe stale bytes.  ``free``/plan teardown is
    not a use; an unresolvable step blocks conservatively.
    """
    targets = set(buffers)
    for pos, step in enumerate(later_steps):
        if isinstance(step, (FreeStep, PlanDestroyStep)):
            continue
        touched = step_buffers(step, env)
        if touched is None:
            return LegalityVerdict(
                ok=False, buffers=buffers,
                reason="a later step has no buffer model; cannot "
                       "prove the intermediate dead")
        hit = sorted(targets & touched)
        if hit:
            return LegalityVerdict(
                ok=False, buffers=tuple(hit),
                reason=f"intermediate {hit[0]!r} is used again "
                       f"{pos + 1} step(s) after the consumer; its "
                       "DRAM round-trip cannot be elided")
    facts = tuple(CertFact("fuse-intermediate-dead", SCHEDULE_LIVENESS,
                           f"{b!r} has no use after the consumer")
                  for b in buffers)
    return LegalityVerdict(ok=True, prover=SCHEDULE_LIVENESS,
                           facts=facts)


def split_step(step: AccelCallStep, parts: int, env: CompileEnv,
               vranges: Optional[ValueRanges] = None
               ) -> Tuple[LegalityVerdict, Optional[AccelCallStep]]:
    """Tile a non-looped AXPY into ``parts`` LOOP iterations.

    The partition must be exact; the tiled step then re-proves its
    carried-dependence freedom like any looped step, which makes the
    rewrite's certificate self-contained.
    """
    if step.accel != "AXPY":
        return LegalityVerdict(
            ok=False,
            reason=f"split is defined for elementwise AXPY, not "
                   f"{step.accel}"), None
    if step.looped:
        return LegalityVerdict(
            ok=False, reason="step is already loop-compacted"), None
    n = cast(int, step.proto.scalars["n"])
    if parts < 2 or n % parts != 0:
        return LegalityVerdict(
            ok=False, prover="constant-distance",
            reason=f"n={n} does not partition exactly into "
                   f"{parts} tiles"), None
    chunk = n // parts
    var = "__tile"
    while any(var in off.coefs
              for _, off in step.proto.addrs.values()):
        var += "_"
    addrs: Dict[str, Tuple[str, Affine]] = {}
    for fld, (buf, off) in step.proto.addrs.items():
        stride = chunk * env.buffers[buf].elem_size
        addrs[fld] = (buf, off.add(Affine(coefs={var: stride})))
    proto = dataclasses.replace(
        step.proto, scalars={**step.proto.scalars, "n": chunk},
        addrs=addrs)
    tiled = dataclasses.replace(step, proto=proto, trips=(parts,),
                                loop_vars=(var,))
    facts: List[CertFact] = [CertFact(
        "split-exact-partition", "constant-distance",
        f"n={n} into {parts} tiles of {chunk}")]

    acc = step_accesses(tiled, env)
    loop_ranges = {var: Interval.bounded(0, parts - 1)}
    _, invariant = step_ranges(tiled, vranges)
    for w in (a for a in acc if a.writes):
        for other in acc:
            if other.buffer != w.buffer:
                continue
            verdict = cross_iteration_verdict(
                w.offset, w.extent, other.offset, other.extent,
                loop_ranges, invariant)
            if verdict.relation != "disjoint":
                return LegalityVerdict(
                    ok=False, prover=verdict.prover,
                    buffers=(w.buffer,),
                    reason=f"tiled {w.field} carries a dependence "
                           f"across tiles ({verdict.relation})"), None
            facts.append(CertFact(
                "carried-dependence-free", verdict.prover,
                f"{w.field} vs {other.field} on {w.buffer!r} "
                "across tiles"))
    return LegalityVerdict(ok=True, prover=facts[-1].prover,
                           facts=tuple(facts)), tiled
