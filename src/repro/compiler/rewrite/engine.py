"""The schedule rewrite engine: fuse / reorder / split, all verified.

``rewrite_schedule`` walks a certified schedule (every offloaded step
already carrying its :class:`SafetyCertificate`) and applies three
primitives, each gated by :mod:`.legality`:

*fuse*
    a producer and the consumer of its output become one (possibly
    looped) PASS; the intermediate buffer stays in tile-local memory
    and skips its DRAM round-trip.  The consumer may first be
    *hoisted* past provably-independent intervening steps (the
    reorder primitive feeding fusion).
*reorder*
    an accelerated step swaps with an independent host call so that
    adjacent accelerated work shares one descriptor.
*split*
    a large monolithic AXPY tiles into LOOP iterations, bounding the
    per-invocation working set.

Every applied rewrite merges the discharged obligations into the
step's certificate (prover-named facts) and logs a
:class:`RewriteDecision` (MEA018); every rejected candidate logs the
blocking dependence (MEA019).  The engine never rewrites a step that
carries no certificate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union, cast

from repro.compiler.analysis.certificates import (CertFact,
                                                  SafetyCertificate)
from repro.compiler.analysis.cfg import build_cfg
from repro.compiler.analysis.ranges import ValueRanges
from repro.compiler.cast import Program
from repro.compiler.recognizer import AccelCallStep, Schedule
from repro.compiler.rewrite.ir import FusedStep, RewriteDecision
from repro.compiler.rewrite.legality import (fuse_legal,
                                             intermediates_dead,
                                             split_step,
                                             steps_independent)
from repro.compiler.semantics import CompileEnv


@dataclass(frozen=True)
class RewriteConfig:
    """Which primitives run, and their thresholds."""

    fuse: bool = True
    reorder: bool = True
    split: bool = True
    #: how many intervening steps a consumer may be hoisted past
    max_hoist: int = 4
    #: split fires only on calls whose written stream is at least this
    split_min_bytes: int = 1 << 20
    split_parts: int = 8


@dataclass
class RewriteResult:
    """The rewritten schedule plus its complete audit trail."""

    schedule: Schedule
    decisions: Tuple[RewriteDecision, ...]
    certificates: Tuple[SafetyCertificate, ...]


Entry = Union[AccelCallStep, FusedStep]


def _tail(entry: Entry) -> AccelCallStep:
    return entry.steps[-1] if isinstance(entry, FusedStep) else entry


def _members(entry: Entry) -> Tuple[AccelCallStep, ...]:
    return entry.steps if isinstance(entry, FusedStep) else (entry,)


def _merge_certificate(step_index: int, accel: str, entry: Entry,
                       consumer: AccelCallStep,
                       extra: Sequence[CertFact]) -> SafetyCertificate:
    facts: List[CertFact] = []
    for member in _members(entry) + (consumer,):
        cert = member.certificate
        if cert is not None:
            facts.extend(cert.facts)
    facts.extend(extra)
    return SafetyCertificate(step_index=step_index, accel=accel,
                             loc=entry.loc, facts=tuple(facts))


def _extended(step: AccelCallStep,
              extra: Sequence[CertFact]) -> AccelCallStep:
    cert = step.certificate
    assert cert is not None
    new = dataclasses.replace(cert, facts=cert.facts + tuple(extra))
    return dataclasses.replace(step, certificate=new)


def _fuse_pass(steps: List[object], origin: List[int],
               env: CompileEnv, vranges: ValueRanges,
               config: RewriteConfig,
               decisions: List[RewriteDecision]) -> None:
    i = 0
    while i < len(steps):
        entry = steps[i]
        if not isinstance(entry, (AccelCallStep, FusedStep)) \
                or entry.certificate is None:
            i += 1
            continue
        tail = _tail(entry)
        produced = set(tail.out_bufs)

        # nearest consumer of the tail's output, within the hoist
        # window; intervening steps must each be provably independent
        # of the consumer for the hoist to be legal
        j = i + 1
        consumer: Optional[AccelCallStep] = None
        while j < len(steps) and j - i - 1 <= config.max_hoist:
            cand = steps[j]
            if isinstance(cand, AccelCallStep) \
                    and produced & set(cand.in_bufs):
                consumer = cand
                break
            if not config.reorder and j > i:
                break
            j += 1
        if consumer is None or not config.fuse:
            i += 1
            continue

        pair_steps = (origin[i], origin[j])
        pair_accels = (entry.accel, consumer.accel)
        pair_loc = consumer.loc

        def reject(reason: str, prover: str = "",
                   buffers: Tuple[str, ...] = (),
                   primitive: str = "fuse") -> None:
            decisions.append(RewriteDecision(
                primitive=primitive, applied=False,
                steps=pair_steps, accels=pair_accels,
                prover=prover, reason=reason, buffers=buffers,
                loc=pair_loc))

        if consumer.certificate is None:
            reject("the consumer carries no safety certificate")
            i += 1
            continue

        hoist_facts: List[CertFact] = []
        hoisted_over = steps[i + 1: j]
        blocked = False
        for passed in hoisted_over:
            verdict = steps_independent(consumer, passed, env, vranges)
            if not verdict.ok:
                reject(f"cannot hoist {consumer.accel} past an "
                       f"intervening step: {verdict.reason}",
                       prover=verdict.prover,
                       buffers=verdict.buffers, primitive="reorder")
                blocked = True
                break
            hoist_facts.extend(verdict.facts)
        if blocked:
            i += 1
            continue

        verdict, linked = fuse_legal(tail, consumer, env, vranges)
        if not verdict.ok:
            reject(verdict.reason, prover=verdict.prover,
                   buffers=verdict.buffers)
            i += 1
            continue
        later = hoisted_over + steps[j + 1:]
        deadness = intermediates_dead(later, linked, env)
        if not deadness.ok:
            reject(deadness.reason, prover=deadness.prover,
                   buffers=deadness.buffers)
            i += 1
            continue

        if hoisted_over:
            decisions.append(RewriteDecision(
                primitive="reorder", applied=True,
                steps=(origin[j],) + tuple(
                    origin[i + 1 + k]
                    for k in range(len(hoisted_over))),
                accels=(consumer.accel,),
                prover=(hoist_facts[0].prover if hoist_facts
                        else "alias-partition"),
                detail=f"hoisted past {len(hoisted_over)} "
                       "independent step(s) to reach its producer",
                loc=consumer.loc))

        members = _members(entry) + (consumer,)
        inter = (entry.intermediates if isinstance(entry, FusedStep)
                 else ()) + linked
        fused = FusedStep(steps=members, intermediates=inter)
        extra = tuple(hoist_facts) + verdict.facts + deadness.facts
        cert = _merge_certificate(origin[i], fused.accel, entry,
                                  consumer, extra)
        fused = dataclasses.replace(fused, certificate=cert)
        decisions.append(RewriteDecision(
            primitive="fuse", applied=True,
            steps=(origin[i], origin[j]),
            accels=tuple(s.accel for s in members),
            prover=verdict.prover,
            detail=(f"{'+'.join(s.accel for s in members)}"
                    + (f" over {fused.iterations} iterations"
                       if fused.looped else "")
                    + f"; {', '.join(repr(b) for b in linked)} "
                      "stays in tile-local memory"),
            buffers=linked, loc=entry.loc))
        del steps[j], origin[j]
        steps[i] = fused
        # keep i: the fused step may feed yet another consumer


def _group_pass(steps: List[object], origin: List[int],
                env: CompileEnv, vranges: ValueRanges,
                decisions: List[RewriteDecision]) -> None:
    """Swap an accelerated step before an independent host call when
    that makes it adjacent to other accelerated work (one descriptor
    instead of two)."""
    i = 0
    while i + 2 < len(steps):
        left = steps[i]
        mid = steps[i + 1]
        right = steps[i + 2]
        if (not isinstance(left, (AccelCallStep, FusedStep))
                or left.certificate is None or left.looped
                or isinstance(mid, (AccelCallStep, FusedStep))):
            i += 1
            continue
        if (not isinstance(right, AccelCallStep) or right.looped
                or right.certificate is None):
            i += 1
            continue
        verdict = steps_independent(right, mid, env, vranges)
        if not verdict.ok:
            decisions.append(RewriteDecision(
                primitive="reorder", applied=False,
                steps=(origin[i + 2], origin[i + 1]),
                accels=(right.accel,), prover=verdict.prover,
                reason=verdict.reason, buffers=verdict.buffers,
                loc=right.loc))
            i += 1
            continue
        decisions.append(RewriteDecision(
            primitive="reorder", applied=True,
            steps=(origin[i + 2], origin[i + 1]),
            accels=(right.accel,), prover=verdict.prover,
            detail="swapped before an independent host call to share "
                   "a descriptor with the preceding pass",
            loc=right.loc))
        moved = _extended(right, verdict.facts)
        steps[i + 1], steps[i + 2] = moved, mid
        origin[i + 1], origin[i + 2] = origin[i + 2], origin[i + 1]
        i += 1


def _split_pass(steps: List[object], origin: List[int],
                env: CompileEnv, vranges: ValueRanges,
                config: RewriteConfig,
                decisions: List[RewriteDecision]) -> None:
    for i, entry in enumerate(steps):
        if not isinstance(entry, AccelCallStep):
            continue
        cert = entry.certificate
        if cert is None or entry.accel != "AXPY" or entry.looped:
            continue
        n = cast(int, entry.proto.scalars["n"])
        buf, _ = entry.proto.addrs["y_pa"]
        if n * env.buffers[buf].elem_size < config.split_min_bytes:
            continue
        verdict, tiled = split_step(entry, config.split_parts, env,
                                    vranges)
        if not verdict.ok or tiled is None:
            decisions.append(RewriteDecision(
                primitive="split", applied=False,
                steps=(origin[i],), accels=(entry.accel,),
                prover=verdict.prover, reason=verdict.reason,
                buffers=verdict.buffers, loc=entry.loc))
            continue
        new_cert = dataclasses.replace(
            cert, facts=cert.facts + verdict.facts)
        steps[i] = dataclasses.replace(tiled, certificate=new_cert)
        decisions.append(RewriteDecision(
            primitive="split", applied=True,
            steps=(origin[i],), accels=(entry.accel,),
            prover=verdict.prover,
            detail=f"n={n} tiled into {config.split_parts} LOOP "
                   "iterations",
            buffers=(buf,), loc=entry.loc))


def rewrite_schedule(program: Program, schedule: Schedule,
                     config: Optional[RewriteConfig] = None
                     ) -> RewriteResult:
    """Rewrite a certified schedule; every change proven and logged.

    ``schedule`` must carry certificates on its offloaded steps (the
    ``translate(analyze=True)`` / ``analyze_source`` output); steps
    without one are never rewritten.
    """
    cfg = config or RewriteConfig()
    graph = build_cfg(program)
    vranges = ValueRanges(graph, schedule.env)
    steps: List[object] = list(schedule.steps)
    origin = list(range(len(steps)))
    decisions: List[RewriteDecision] = []

    if cfg.fuse:
        _fuse_pass(steps, origin, schedule.env, vranges, cfg,
                   decisions)
    if cfg.reorder:
        _group_pass(steps, origin, schedule.env, vranges, decisions)
    if cfg.split:
        _split_pass(steps, origin, schedule.env, vranges, cfg,
                    decisions)

    certificates = tuple(
        s.certificate for s in steps
        if isinstance(s, (AccelCallStep, FusedStep))
        and s.certificate is not None)
    return RewriteResult(
        schedule=Schedule(env=schedule.env, steps=steps),
        decisions=tuple(decisions), certificates=certificates)
