"""Pass 1: library-call identification and loop analysis.

Walks the program in statement order and produces a *schedule* of steps:
allocations, host (compute-bounded) library calls, accelerated calls —
single or collapsed from an OpenMP loop nest into one looped step with a
mixed-radix stride table — and plan bookkeeping for the FFTW guru
interface (rank-0 plans become RESHP invocations, rank-1 plans become
FFT invocations, exactly as the paper maps them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, List, Optional, Sequence,
                    Tuple, Union)

from repro.accel.axpy import AxpyParams
from repro.accel.base import StrideTable
from repro.accel.dot import DTYPE_C64, DTYPE_F32, DotParams
from repro.accel.fft import FftParams
from repro.accel.gemv import GemvParams
from repro.accel.reshp import ReshpParams
from repro.accel.resmp import ResmpParams
from repro.accel.spmv import SpmvParams
from repro.compiler.affine import Affine, AffineError
from repro.compiler.cast import (Assign, Call, Expr, ExprStmt, For, Ident,
                                 Num, Program, Stmt, VarDecl, stmt_loc)
from repro.compiler.diagnostics import SourceLoc
from repro.compiler.errors import CompilerError
from repro.compiler.inline import inline_body
from repro.compiler.semantics import (BufferInfo, CompileEnv, IoDimSpec,
                                      PlanSpec, SemanticError, build_env)

if TYPE_CHECKING:                     # break the runtime import cycle:
    # certificates are produced by the analysis layer, which imports
    # this module; steps only *carry* them.
    from repro.compiler.analysis.certificates import SafetyCertificate


class RecognizerError(CompilerError):
    """Raised when a program uses the libraries in unsupported ways.

    A typed diagnostic (code ``MEA013``) with an optional source
    location; ``str(exc)`` keeps the legacy bare-message shape.
    Recursion in the call graph carries code ``MEA011`` instead (the
    effect summary is unavailable, and the branchless subset cannot
    terminate a recursive chain).
    """

    default_code = "MEA013"


# -- schedule steps ----------------------------------------------------------

@dataclass(frozen=True)
class AllocStep:
    buffer: str
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


@dataclass(frozen=True)
class FreeStep:
    buffer: str
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


@dataclass(frozen=True)
class PlanDestroyStep:
    """An ``fftwf_destroy_plan`` call — plan lifecycle bookkeeping."""

    plan: str
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)


@dataclass(frozen=True)
class HostCallStep:
    """A compute-bounded library call left on the CPU.

    ``accel``/``proto`` are set when this step is a *demoted*
    accelerated call (the safety checker proved the offload unsound):
    the call still runs and is timed on the host library, using the
    operation profile derived from its parameter prototype.
    """

    func: str
    args: Tuple[Expr, ...]
    trips: Tuple[int, ...] = ()
    loop_vars: Tuple[str, ...] = ()
    accel: str = ""
    proto: Optional["ParamsProto"] = None
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)

    @property
    def demoted(self) -> bool:
        return bool(self.accel)

    @property
    def calls(self) -> int:
        total = 1
        for t in self.trips:
            total *= t
        return total


@dataclass(frozen=True)
class ParamsProto:
    """An accelerator parameter record with symbolic addresses.

    ``scalars`` are resolved values; ``addrs`` map address fields to
    (buffer name, affine byte offset in the loop variables).
    """

    params_type: type
    scalars: Dict[str, object]
    addrs: Dict[str, Tuple[str, Affine]]

    def instantiate(self, pa_of: Dict[str, int],
                    loop_values: Optional[Dict[str, int]] = None) -> object:
        values: Dict[str, object] = dict(self.scalars)
        env = loop_values or {}
        for fld, (buf, offset) in self.addrs.items():
            values[fld] = pa_of[buf] + offset.evaluate(env)
        return self.params_type(**values)

    def stride_table(self, loop_vars: Sequence[str],
                     trips: Sequence[int]) -> StrideTable:
        deltas: Dict[str, Tuple[int, ...]] = {}
        for fld in self.params_type.ADDR_FIELDS:
            if fld in self.addrs:
                _, offset = self.addrs[fld]
                deltas[fld] = tuple(offset.coef(v) for v in loop_vars)
            else:
                deltas[fld] = (0,) * len(loop_vars)
        return StrideTable(trips=tuple(trips), deltas=deltas)


@dataclass(frozen=True)
class AccelCallStep:
    """One accelerated call site, possibly looped.

    ``func``/``args`` keep the original library call so the safety
    checker can demote the step to a :class:`HostCallStep` when the
    offload would be unsound. ``omp`` records that the surrounding
    collapsed nest carried a ``#pragma omp parallel for`` — the race
    detector only governs those steps. ``chain`` names the user-defined
    call path (outermost first) when the call site was inlined out of
    function bodies.
    """

    accel: str
    proto: ParamsProto
    in_bufs: Tuple[str, ...]
    out_bufs: Tuple[str, ...]
    trips: Tuple[int, ...] = ()
    loop_vars: Tuple[str, ...] = ()
    func: str = ""
    args: Tuple[Expr, ...] = ()
    omp: bool = False
    chain: Tuple[str, ...] = ()
    loc: Optional[SourceLoc] = field(default=None, compare=False,
                                     repr=False)
    #: rewrite-safety certificate attached after the rule battery ran
    #: (None until then, and always None on demoted/unchecked steps).
    #: Excluded from equality so checked and unchecked schedules of a
    #: clean program still compare equal.
    certificate: Optional["SafetyCertificate"] = field(
        default=None, compare=False, repr=False)

    def demote(self) -> HostCallStep:
        """The same call site, kept on the host library."""
        return HostCallStep(func=self.func, args=self.args,
                            trips=self.trips, loop_vars=self.loop_vars,
                            accel=self.accel, proto=self.proto,
                            loc=self.loc)

    @property
    def looped(self) -> bool:
        return bool(self.trips)

    @property
    def calls(self) -> int:
        total = 1
        for t in self.trips:
            total *= t
        return total


# Schedule steps are an open set: the recognizer emits the five step
# kinds above, and the optimizer (repro.compiler.passes) later splices
# its own ChainStep/DescriptorStep nodes into the same list — consumers
# dispatch by isinstance, so the alias stays deliberately wide.
Step = object


@dataclass
class Schedule:
    """The recognizer's output: environment + ordered steps."""

    env: CompileEnv
    steps: List[Step] = field(default_factory=list)

    def accel_steps(self) -> List[AccelCallStep]:
        return [s for s in self.steps if isinstance(s, AccelCallStep)]

    def total_library_calls(self) -> int:
        """Calls in the original program (loops expanded) — the number
        the paper's Fig 14 compaction claim counts."""
        total = 0
        for step in self.steps:
            if isinstance(step, (AccelCallStep, HostCallStep)):
                total += step.calls
        return total


#: Functions executed on the host (compute-bounded, Table 4).
HOST_FUNCTIONS = {"cblas_cherk", "cblas_ctrsm_lower", "cblas_ctrsm_upper",
                  "cpotrf_lower"}

#: Functions recognised as accelerator targets (Table 1).
ACCEL_FUNCTIONS = {"cblas_saxpy", "cblas_sdot_sub", "cblas_cdotc_sub",
                   "cblas_sgemv", "mkl_scsrgemv", "dfsInterpolate1D",
                   "fftwf_execute", "mkl_simatcopy", "mkl_somatcopy"}


class Recognizer:
    """Builds a :class:`Schedule` from a parsed program."""

    def __init__(self, program: Program):
        self.program = program
        self.env = build_env(program)
        self.schedule = Schedule(env=self.env)
        self.functions = program.function_map()
        self._loc: Optional[SourceLoc] = None     # current statement
        self._omp = False                         # inside an omp nest
        self._chain: Tuple[str, ...] = ()         # inline call path
        self._inline_stack: List[str] = []
        self._inline_count = 0

    # -- helpers -------------------------------------------------------------

    def _error(self, message: str, loc: Optional[SourceLoc] = None
               ) -> RecognizerError:
        return RecognizerError(message, loc=loc or self._loc)

    def _const(self, expr: Expr) -> Union[int, float]:
        try:
            return self.env.eval_const(expr)
        except SemanticError as exc:
            raise self._error(exc.message) from exc

    def _int_const(self, expr: Expr) -> int:
        """A constant that must be structurally integral (a size,
        stride, rank, or trip count — never an ``alpha``-style
        coefficient, which may legitimately be fractional)."""
        value = self._const(expr)
        if isinstance(value, float):
            if not value.is_integer():
                raise self._error(f"expected an integer constant, "
                                  f"got {value!r}")
            return int(value)
        return value

    def _addr(self, expr: Expr) -> Tuple[str, Affine]:
        try:
            return self.env.buffer_address(expr)
        except SemanticError as exc:
            raise self._error(exc.message) from exc
        except AffineError as exc:
            raise self._error(str(exc)) from exc

    def _buffer(self, name: str) -> BufferInfo:
        return self.env.buffers[name]

    # -- top-level walk -------------------------------------------------------

    def run(self) -> Schedule:
        self._walk(self.program.stmts, loop_vars=(), trips=())
        return self.schedule

    def _walk(self, stmts: Sequence[Stmt], loop_vars: Tuple[str, ...],
              trips: Tuple[int, ...]) -> None:
        for stmt in stmts:
            self._loc = stmt_loc(stmt) or self._loc
            if isinstance(stmt, VarDecl):
                continue                    # handled by build_env
            elif isinstance(stmt, Assign):
                self._handle_assign(stmt, loop_vars)
            elif isinstance(stmt, ExprStmt) and isinstance(stmt.expr,
                                                           Call):
                self._handle_call(stmt.expr, loop_vars, trips)
            elif isinstance(stmt, For):
                self._handle_for(stmt, loop_vars, trips)
            else:
                raise self._error(f"unsupported statement {stmt!r}")

    def _handle_for(self, loop: For, loop_vars: Tuple[str, ...],
                    trips: Tuple[int, ...]) -> None:
        start = self._int_const(loop.start)
        bound = self._int_const(loop.bound)
        if start != 0 or loop.step != 1:
            raise self._error("only canonical 0..N-1 unit-step loops "
                                  "are supported for compaction")
        count = bound
        if count <= 0:
            raise self._error("loop trip count must be positive")
        was_omp = self._omp
        self._omp = was_omp or loop.pragma_omp
        try:
            self._walk(loop.body, loop_vars + (loop.var,),
                       trips + (count,))
        finally:
            self._omp = was_omp

    def _inline_call(self, call: Call, loop_vars: Tuple[str, ...],
                     trips: Tuple[int, ...]) -> None:
        """Splice a user-defined function body into the call site.

        Recursion carries code MEA011: the effect summary is
        unavailable, and a recursive chain in this branchless subset
        could never terminate anyway.
        """
        name = call.func
        if name in self._inline_stack:
            path = " -> ".join(self._inline_stack + [name])
            raise RecognizerError(
                f"recursive call chain {path}; effect summary "
                "unavailable (a branchless recursive chain cannot "
                "terminate)", loc=call.loc or self._loc, code="MEA011")
        self._inline_count += 1
        body = inline_body(self.functions[name], call.args,
                           suffix=f"c{self._inline_count}")
        self._inline_stack.append(name)
        prev_chain = self._chain
        self._chain = prev_chain + (name,)
        try:
            self._walk(body, loop_vars, trips)
        finally:
            self._chain = prev_chain
            self._inline_stack.pop()

    def _handle_assign(self, stmt: Assign,
                       loop_vars: Tuple[str, ...]) -> None:
        if loop_vars:
            raise self._error("assignments inside OpenMP nests are "
                                  "not supported")
        value = stmt.value
        if isinstance(value, Call) and value.func == "malloc":
            if not isinstance(stmt.target, Ident):
                raise self._error("malloc must assign a pointer "
                                      "variable")
            buf = self._buffer(stmt.target.name)
            size = self._int_const(value.args[0])
            buf.count = size // buf.elem_size
            self.schedule.steps.append(
                AllocStep(buffer=buf.name, loc=stmt.loc))
            return
        if isinstance(value, Call) and value.func == "fftwf_plan_guru_dft":
            if not isinstance(stmt.target, Ident):
                raise self._error("plan must assign a plan variable")
            self._record_plan(stmt.target.name, value)
            return
        raise self._error(f"unsupported assignment {stmt!r}")

    # -- plan handling -------------------------------------------------------

    def _record_plan(self, name: str, call: Call) -> None:
        args = call.args
        if len(args) != 8:
            raise self._error("fftwf_plan_guru_dft takes 8 arguments")
        rank = self._int_const(args[0])
        dims = self._iodims(args[1], rank)
        howmany_rank = self._int_const(args[2])
        howmany = self._iodims(args[3], howmany_rank)
        src, src_off = self._addr(args[4])
        dst, dst_off = self._addr(args[5])
        sign = self._int_const(args[6])
        if not src_off.is_constant or not dst_off.is_constant:
            raise self._error("plan buffers must not depend on loop "
                                  "variables")
        self.env.plans[name] = PlanSpec(
            name=name, rank=rank, dims=dims, howmany=howmany, src=src,
            src_offset=src_off.const, dst=dst, dst_offset=dst_off.const,
            sign=sign)

    def _iodims(self, expr: Expr, rank: int) -> List[IoDimSpec]:
        if rank == 0:
            return []
        if isinstance(expr, Ident) and expr.name in self.env.iodims:
            dims = self.env.iodims[expr.name]
            if len(dims) != rank:
                raise self._error(
                    f"iodim array {expr.name!r} has {len(dims)} entries, "
                    f"rank says {rank}")
            return dims
        raise self._error("dims argument must name an fftw_iodim "
                              "array")

    # -- call dispatch ----------------------------------------------------------

    def _handle_call(self, call: Call, loop_vars: Tuple[str, ...],
                     trips: Tuple[int, ...]) -> None:
        name = call.func
        loc = call.loc or self._loc
        if name in self.functions:
            self._inline_call(call, loop_vars, trips)
            return
        if name == "free":
            if loop_vars:
                raise self._error("free inside a loop nest")
            target = call.args[0]
            if isinstance(target, Ident):
                buffer = target.name
            else:
                # inlined pointer parameters arrive as &buf[0]
                buffer, off = self._addr(target)
                if not off.is_constant or off.const != 0:
                    raise self._error("free takes the buffer base "
                                      "pointer")
            self.schedule.steps.append(
                FreeStep(buffer=buffer, loc=loc))
            return
        if name == "fftwf_destroy_plan":
            if loop_vars:
                raise self._error("fftwf_destroy_plan inside a loop "
                                  "nest")
            target = call.args[0] if call.args else None
            if not isinstance(target, Ident):
                raise self._error("fftwf_destroy_plan takes a plan name")
            self.schedule.steps.append(
                PlanDestroyStep(plan=target.name, loc=loc))
            return
        if name in HOST_FUNCTIONS:
            self.schedule.steps.append(HostCallStep(
                func=name, args=call.args, trips=trips,
                loop_vars=loop_vars, loc=loc))
            return
        if name not in ACCEL_FUNCTIONS:
            raise self._error(f"unknown library call {name!r}")
        builder = getattr(self, f"_build_{name}", None)
        if builder is None:
            raise self._error(f"no builder for {name!r}")
        step = builder(call, loop_vars, trips)
        self.schedule.steps.append(step)

    def _accel_step(self, accel: str, proto: ParamsProto,
                    in_bufs: Sequence[str], out_bufs: Sequence[str],
                    loop_vars: Sequence[str], trips: Sequence[int],
                    call: Optional[Call] = None) -> AccelCallStep:
        return AccelCallStep(accel=accel, proto=proto,
                             in_bufs=tuple(in_bufs),
                             out_bufs=tuple(out_bufs),
                             trips=tuple(trips),
                             loop_vars=tuple(loop_vars),
                             func=call.func if call is not None else "",
                             args=call.args if call is not None else (),
                             omp=self._omp, chain=self._chain,
                             loc=(call.loc if call is not None else None)
                             or self._loc)

    # -- builders, one per Table 1 function -------------------------------------

    def _build_cblas_saxpy(self, call: Call, loop_vars: Tuple[str, ...],
                            trips: Tuple[int, ...]) -> AccelCallStep:
        n, alpha, x, incx, y, incy = call.args
        if self._int_const(incx) != 1 or self._int_const(incy) != 1:
            raise self._error("accelerated saxpy requires unit "
                                  "strides")
        xbuf, xoff = self._addr(x)
        ybuf, yoff = self._addr(y)
        proto = ParamsProto(
            params_type=AxpyParams,
            scalars={"n": self._int_const(n),
                     "alpha": float(self._const(alpha))},
            addrs={"x_pa": (xbuf, xoff), "y_pa": (ybuf, yoff)})
        return self._accel_step("AXPY", proto, [xbuf, ybuf], [ybuf],
                                loop_vars, trips, call)

    def _dot_step(self, call: Call, loop_vars: Tuple[str, ...],
                   trips: Tuple[int, ...], dtype: int) -> AccelCallStep:
        n, x, incx, y, incy, out = call.args
        xbuf, xoff = self._addr(x)
        ybuf, yoff = self._addr(y)
        obuf, ooff = self._addr(out)
        proto = ParamsProto(
            params_type=DotParams,
            scalars={"n": self._int_const(n),
                     "incx": self._int_const(incx),
                     "incy": self._int_const(incy), "dtype": dtype},
            addrs={"x_pa": (xbuf, xoff), "y_pa": (ybuf, yoff),
                   "out_pa": (obuf, ooff)})
        return self._accel_step("DOT", proto, [xbuf, ybuf], [obuf],
                                loop_vars, trips, call)

    def _build_cblas_sdot_sub(self, call: Call, loop_vars: Tuple[str, ...],
                               trips: Tuple[int, ...]) -> AccelCallStep:
        return self._dot_step(call, loop_vars, trips, DTYPE_F32)

    def _build_cblas_cdotc_sub(self, call: Call, loop_vars: Tuple[str, ...],
                                trips: Tuple[int, ...]) -> AccelCallStep:
        return self._dot_step(call, loop_vars, trips, DTYPE_C64)

    def _build_cblas_sgemv(self, call: Call, loop_vars: Tuple[str, ...],
                            trips: Tuple[int, ...]) -> AccelCallStep:
        (order, trans, m, n, alpha, a, lda, x, incx, beta, y,
         incy) = call.args
        if self._int_const(order) != 101 or self._int_const(trans) != 111:
            raise self._error("accelerated sgemv supports row-major "
                                  "no-transpose only")
        if self._int_const(incx) != 1 or self._int_const(incy) != 1:
            raise self._error("accelerated sgemv requires unit "
                                  "strides")
        m_val, n_val = self._int_const(m), self._int_const(n)
        if self._int_const(lda) != n_val:
            raise self._error("accelerated sgemv requires lda == n")
        abuf, aoff = self._addr(a)
        xbuf, xoff = self._addr(x)
        ybuf, yoff = self._addr(y)
        proto = ParamsProto(
            params_type=GemvParams,
            scalars={"m": m_val, "n": n_val,
                     "alpha": float(self._const(alpha)),
                     "beta": float(self._const(beta))},
            addrs={"a_pa": (abuf, aoff), "x_pa": (xbuf, xoff),
                   "y_pa": (ybuf, yoff)})
        return self._accel_step("GEMV", proto, [abuf, xbuf, ybuf],
                                [ybuf], loop_vars, trips, call)

    def _build_mkl_scsrgemv(self, call: Call, loop_vars: Tuple[str, ...],
                             trips: Tuple[int, ...]) -> AccelCallStep:
        m, a, ia, ja, x, y = call.args
        rows = self._int_const(m)
        abuf, _ = self._addr(a)
        ibuf, ioff = self._addr(ia)
        jbuf, joff = self._addr(ja)
        xbuf, xoff = self._addr(x)
        ybuf, yoff = self._addr(y)
        nnz = self._buffer(abuf).count
        proto = ParamsProto(
            params_type=SpmvParams,
            scalars={"rows": rows, "cols": rows, "nnz": nnz,
                     "locality_bytes": 0},
            addrs={"indptr_pa": (ibuf, ioff), "indices_pa": (jbuf, joff),
                   "data_pa": (abuf, Affine.constant(0)),
                   "x_pa": (xbuf, xoff), "y_pa": (ybuf, yoff)})
        return self._accel_step("SPMV", proto,
                                [abuf, ibuf, jbuf, xbuf], [ybuf],
                                loop_vars, trips, call)

    def _build_dfsInterpolate1D(self, call: Call, loop_vars: Tuple[str, ...],
                                 trips: Tuple[int, ...]) -> AccelCallStep:
        blocks, n_in, knots, series, n_out, sites, out = call.args
        kbuf, koff = self._addr(knots)
        ibuf, ioff = self._addr(series)
        sbuf, soff = self._addr(sites)
        obuf, ooff = self._addr(out)
        proto = ParamsProto(
            params_type=ResmpParams,
            scalars={"blocks": self._int_const(blocks),
                     "n_in": self._int_const(n_in),
                     "n_out": self._int_const(n_out)},
            addrs={"in_pa": (ibuf, ioff), "sites_pa": (sbuf, soff),
                   "out_pa": (obuf, ooff), "knots_pa": (kbuf, koff)})
        return self._accel_step("RESMP", proto, [kbuf, ibuf, sbuf],
                                [obuf], loop_vars, trips, call)

    def _build_mkl_simatcopy(self, call: Call, loop_vars: Tuple[str, ...],
                              trips: Tuple[int, ...]) -> AccelCallStep:
        rows, cols, alpha, ab = call.args
        if float(self._const(alpha)) != 1.0:
            raise self._error("accelerated simatcopy requires "
                                  "alpha == 1")
        buf, off = self._addr(ab)
        proto = ParamsProto(
            params_type=ReshpParams,
            scalars={"rows": self._int_const(rows),
                     "cols": self._int_const(cols),
                     "elem_bytes": self._buffer(buf).elem_size},
            addrs={"src_pa": (buf, off), "dst_pa": (buf, off)})
        return self._accel_step("RESHP", proto, [buf], [buf],
                                loop_vars, trips, call)

    def _build_mkl_somatcopy(self, call: Call, loop_vars: Tuple[str, ...],
                              trips: Tuple[int, ...]) -> AccelCallStep:
        rows, cols, alpha, a, b = call.args
        if float(self._const(alpha)) != 1.0:
            raise self._error("accelerated somatcopy requires "
                                  "alpha == 1")
        abuf, aoff = self._addr(a)
        bbuf, boff = self._addr(b)
        proto = ParamsProto(
            params_type=ReshpParams,
            scalars={"rows": self._int_const(rows),
                     "cols": self._int_const(cols),
                     "elem_bytes": self._buffer(abuf).elem_size},
            addrs={"src_pa": (abuf, aoff), "dst_pa": (bbuf, boff)})
        return self._accel_step("RESHP", proto, [abuf], [bbuf],
                                loop_vars, trips, call)

    def _build_fftwf_execute(self, call: Call, loop_vars: Tuple[str, ...],
                              trips: Tuple[int, ...]) -> AccelCallStep:
        arg = call.args[0]
        if not isinstance(arg, Ident) or arg.name not in self.env.plans:
            raise self._error("fftwf_execute takes a prepared plan")
        plan = self.env.plans[arg.name]
        if plan.rank == 0:
            return self._reshape_from_plan(plan, loop_vars, trips, call)
        if plan.rank == 1:
            return self._fft_from_plan(plan, loop_vars, trips, call)
        raise self._error("only rank-0 and rank-1 guru plans are "
                              "supported")

    def _fft_from_plan(self, plan: PlanSpec,
                       loop_vars: Tuple[str, ...],
                       trips: Tuple[int, ...],
                       call: Optional[Call] = None) -> AccelCallStep:
        dim = plan.dims[0]
        if dim.istride != 1 or dim.ostride != 1:
            raise self._error("accelerated FFT needs unit transform "
                                  "stride (reshape first)")
        batch = 1
        for hd in plan.howmany:
            batch *= hd.n
        proto = ParamsProto(
            params_type=FftParams,
            scalars={"n": dim.n, "batch": batch, "sign": plan.sign},
            addrs={"src_pa": (plan.src,
                              Affine.constant(plan.src_offset)),
                   "dst_pa": (plan.dst,
                              Affine.constant(plan.dst_offset))})
        return self._accel_step("FFT", proto, [plan.src], [plan.dst],
                                loop_vars, trips, call)

    def _reshape_from_plan(self, plan: PlanSpec,
                           loop_vars: Tuple[str, ...],
                           trips: Tuple[int, ...],
                           call: Optional[Call] = None
                           ) -> AccelCallStep:
        batch, rows, cols = analyze_corner_turn(plan.howmany)
        elem = self._buffer(plan.src).elem_size
        proto = ParamsProto(
            params_type=ReshpParams,
            scalars={"rows": rows, "cols": cols, "elem_bytes": elem},
            addrs={"src_pa": (plan.src,
                              Affine.constant(plan.src_offset)),
                   "dst_pa": (plan.dst,
                              Affine.constant(plan.dst_offset))})
        step_trips = tuple(trips)
        step_vars = tuple(loop_vars)
        if batch > 1:
            # batched corner turn: a LOOP over per-slab transposes
            var = f"__reshp_batch_{len(self.schedule.steps)}"
            slab = rows * cols * elem
            proto = ParamsProto(
                params_type=proto.params_type,
                scalars=proto.scalars,
                addrs={"src_pa": (plan.src, Affine(
                    const=plan.src_offset, coefs={var: slab})),
                    "dst_pa": (plan.dst, Affine(
                        const=plan.dst_offset, coefs={var: slab}))})
            step_trips = step_trips + (batch,)
            step_vars = step_vars + (var,)
        return self._accel_step("RESHP", proto, [plan.src], [plan.dst],
                                step_vars, step_trips, call)


def analyze_corner_turn(howmany: List[IoDimSpec]
                        ) -> Tuple[int, int, int]:
    """Classify a rank-0 guru plan as (batch, rows, cols) transpose.

    Dims are sorted input-major; a contiguous prefix with identical
    input/output layout is the batch; the remaining two dims must be a
    swap (rows x cols transposed). This covers the STAP corner turn and
    every 2-D/batched-2-D layout change our workloads perform.
    """
    dims = sorted(howmany, key=lambda d: -d.istride)
    # verify the input side is dense
    expected = 1
    for d in reversed(dims):
        if d.istride != expected:
            raise RecognizerError("corner-turn input is not dense")
        expected *= d.n
    out_sorted = sorted(dims, key=lambda d: -d.ostride)
    expected = 1
    for d in reversed(out_sorted):
        if d.ostride != expected:
            raise RecognizerError("corner-turn output is not dense")
        expected *= d.n
    batch = 1
    idx = 0
    while idx < len(dims) and dims[idx] is out_sorted[idx]:
        batch *= dims[idx].n
        idx += 1
    rest_in = dims[idx:]
    rest_out = out_sorted[idx:]
    if len(rest_in) == 0:
        return batch, 1, 1                     # pure copy
    if len(rest_in) == 2 and rest_in[0] is rest_out[1] \
            and rest_in[1] is rest_out[0]:
        return batch, rest_in[0].n, rest_in[1].n
    raise RecognizerError("layout change is not a (batched) 2-D "
                          "transpose")


def recognize(program: Program) -> Schedule:
    """Run pass 1 over a parsed program."""
    return Recognizer(program).run()
