"""Recursive-descent parser for the C subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.compiler.cast import (AddrOf, Assign, BinOp, Call, CParseError,
                                 Expr, ExprStmt, For, FuncDef, Ident,
                                 Index, InitList, Num, Param, Program,
                                 Sizeof, VarDecl)
from repro.compiler.clexer import Token, parse_number, tokenize
from repro.compiler.diagnostics import SourceLoc


def _loc(tok: Token) -> SourceLoc:
    return SourceLoc(line=tok.line, col=tok.col)

#: Type keywords the subset understands (with their element sizes; the
#: semantic layer uses these for sizeof and buffer shapes).
TYPE_KEYWORDS = {
    "void": 0,
    "char": 1,
    "int": 4,
    "long": 8,
    "size_t": 8,
    "float": 4,
    "double": 8,
    "complex": 8,            # float complex, numpy complex64
    "fftwf_plan": 8,
    "fftw_iodim": 24,
}

_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[Token]:
        idx = self.pos + offset
        return self.tokens[idx] if idx < len(self.tokens) else None

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.text == text

    def at_kind(self, kind: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.kind == kind

    def advance(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise CParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.advance()
        if tok.text != text:
            raise CParseError(
                f"line {tok.line}: expected {text!r}, got {tok.text!r}")
        return tok

    # -- functions -----------------------------------------------------------

    def at_funcdef(self) -> bool:
        """Lookahead: type keyword, '*'*, identifier, '(' — a function
        definition rather than a declaration or a call."""
        tok = self.peek()
        if tok is None or tok.kind != "id" or tok.text not in TYPE_KEYWORDS:
            return False
        offset = 1
        while True:
            nxt = self.peek(offset)
            if nxt is None:
                return False
            if nxt.text == "*":
                offset += 1
                continue
            break
        name = self.peek(offset)
        if name is None or name.kind != "id":
            return False
        paren = self.peek(offset + 1)
        return paren is not None and paren.text == "("

    def parse_funcdef(self) -> FuncDef:
        rtype_tok = self.advance()
        if rtype_tok.text != "void":
            raise CParseError(
                f"line {rtype_tok.line}: only void user-defined "
                f"functions are supported (got {rtype_tok.text!r}); "
                "return results through pointer parameters")
        name_tok = self.advance()
        if name_tok.kind != "id":
            raise CParseError(
                f"line {name_tok.line}: expected function name, got "
                f"{name_tok.text!r}")
        self.expect("(")
        params = []
        nxt = self.peek(1)
        if self.at("void") and nxt is not None and nxt.text == ")":
            self.advance()                   # f(void)
        while not self.at(")"):
            params.append(self.parse_param())
            if self.at(","):
                self.advance()
        self.expect(")")
        self.expect("{")
        body = self.parse_stmts(stop="}")
        self.expect("}")
        return FuncDef(name=name_tok.text, params=tuple(params),
                       body=body, loc=_loc(name_tok))

    def parse_param(self) -> Param:
        ctype_tok = self.advance()
        if ctype_tok.kind != "id" or ctype_tok.text not in TYPE_KEYWORDS:
            raise CParseError(
                f"line {ctype_tok.line}: expected parameter type, got "
                f"{ctype_tok.text!r}")
        pointer = False
        while self.at("*"):
            self.advance()
            pointer = True
        name_tok = self.advance()
        if name_tok.kind != "id":
            raise CParseError(
                f"line {name_tok.line}: expected parameter name, got "
                f"{name_tok.text!r}")
        return Param(ctype=ctype_tok.text, name=name_tok.text,
                     pointer=pointer)

    # -- statements ----------------------------------------------------------

    def parse_stmts(self, stop: Optional[str] = None) -> Tuple:
        stmts = []
        while True:
            tok = self.peek()
            if tok is None:
                if stop is not None:
                    raise CParseError(f"missing {stop!r}")
                break
            if stop is not None and tok.text == stop:
                break
            stmts.append(self.parse_stmt())
        return tuple(stmts)

    def parse_stmt(self):
        tok = self.peek()
        if tok.kind == "pragma":
            self.advance()
            loop = self.parse_stmt()
            if not isinstance(loop, For):
                raise CParseError(
                    f"line {tok.line}: omp pragma must precede a for loop")
            return For(var=loop.var, start=loop.start, bound=loop.bound,
                       step=loop.step, body=loop.body, pragma_omp=True,
                       loc=loop.loc or _loc(tok))
        if tok.text == "for":
            return self.parse_for()
        if tok.text == "{":
            self.advance()
            stmts = self.parse_stmts(stop="}")
            self.expect("}")
            if len(stmts) != 1:
                raise CParseError(
                    f"line {tok.line}: bare blocks must hold one "
                    "statement in this subset")
            return stmts[0]
        if tok.kind == "id" and tok.text in TYPE_KEYWORDS:
            return self.parse_decl()
        return self.parse_expr_or_assign()

    def parse_decl(self) -> VarDecl:
        ctype_tok = self.advance()
        ctype = ctype_tok.text
        pointer = False
        while self.at("*"):
            self.advance()
            pointer = True
        name_tok = self.advance()
        if name_tok.kind != "id":
            raise CParseError(
                f"line {name_tok.line}: expected identifier in "
                f"declaration, got {name_tok.text!r}")
        dims = []
        while self.at("["):
            self.advance()
            dims.append(self.parse_expr())
            self.expect("]")
        init = None
        if self.at("="):
            self.advance()
            init = (self.parse_init_list() if self.at("{")
                    else self.parse_expr())
        self.expect(";")
        return VarDecl(ctype=ctype, name=name_tok.text, pointer=pointer,
                       dims=tuple(dims), init=init, loc=_loc(ctype_tok))

    def parse_init_list(self) -> InitList:
        self.expect("{")
        items = []
        while not self.at("}"):
            items.append(self.parse_init_list() if self.at("{")
                         else self.parse_expr())
            if self.at(","):
                self.advance()
        self.expect("}")
        return InitList(items=tuple(items))

    def parse_expr_or_assign(self):
        first = self.peek()
        loc = _loc(first) if first is not None else None
        expr = self.parse_expr()
        if self.at("="):
            self.advance()
            value = self.parse_expr()
            self.expect(";")
            if not isinstance(expr, (Ident, Index)):
                raise CParseError("assignment target must be a variable "
                                  "or array element")
            return Assign(target=expr, value=value, loc=loc)
        self.expect(";")
        return ExprStmt(expr=expr, loc=loc)

    def parse_for(self) -> For:
        for_tok = self.expect("for")
        self.expect("(")
        var_tok = self.advance()
        if var_tok.kind != "id":
            raise CParseError(f"line {var_tok.line}: for-loop init must "
                              "assign the loop variable")
        var = var_tok.text
        self.expect("=")
        start = self.parse_expr()
        self.expect(";")
        cond_var = self.advance()
        if cond_var.text != var:
            raise CParseError(f"line {cond_var.line}: loop condition must "
                              f"test {var!r}")
        cmp_tok = self.advance()
        if cmp_tok.text not in ("<", "<="):
            raise CParseError(f"line {cmp_tok.line}: only < and <= loop "
                              "conditions are supported")
        bound = self.parse_expr()
        if cmp_tok.text == "<=":
            bound = BinOp("+", bound, Num(1))
        self.expect(";")
        step = self._parse_step(var)
        self.expect(")")
        if self.at("{"):
            self.advance()
            body = self.parse_stmts(stop="}")
            self.expect("}")
        else:
            body = (self.parse_stmt(),)
        return For(var=var, start=start, bound=bound, step=step,
                   body=body, loc=_loc(for_tok))

    def _parse_step(self, var: str) -> int:
        tok = self.advance()
        if tok.text == "++":                       # ++v
            name = self.advance()
            if name.text != var:
                raise CParseError("loop step must update the loop variable")
            return 1
        if tok.kind == "id" and tok.text == var:
            nxt = self.advance()
            if nxt.text == "++":                   # v++
                return 1
            if nxt.text == "+=":                   # v += k
                step_tok = self.advance()
                if step_tok.kind != "num":
                    raise CParseError("loop step must be a constant")
                return int(parse_number(step_tok.text))
        raise CParseError(f"line {tok.line}: unsupported loop step")

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_compare()

    def parse_compare(self) -> Expr:
        left = self.parse_additive()
        while (tok := self.peek()) is not None and tok.text in _CMP_OPS:
            op = self.advance().text
            left = BinOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.at("+") or self.at("-"):
            op = self.advance().text
            left = BinOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.at("*") or self.at("/") or self.at("%"):
            op = self.advance().text
            left = BinOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.at("&"):
            self.advance()
            return AddrOf(self.parse_unary())
        if self.at("-"):
            self.advance()
            operand = self.parse_unary()
            if isinstance(operand, Num):
                return Num(-operand.value)
            return BinOp("-", Num(0), operand)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while self.at("["):
            self.advance()
            idx = self.parse_expr()
            self.expect("]")
            expr = Index(base=expr, idx=idx)
        return expr

    def parse_primary(self) -> Expr:
        tok = self.advance()
        if tok.kind == "num":
            return Num(parse_number(tok.text))
        if tok.text == "(":
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if tok.kind == "id":
            if tok.text == "sizeof":
                self.expect("(")
                ctype = self.advance().text
                if ctype not in TYPE_KEYWORDS:
                    raise CParseError(
                        f"line {tok.line}: sizeof of unknown type "
                        f"{ctype!r}")
                self.expect(")")
                return Sizeof(ctype=ctype)
            if self.at("("):
                self.advance()
                args = []
                while not self.at(")"):
                    args.append(self.parse_expr())
                    if self.at(","):
                        self.advance()
                self.expect(")")
                return Call(func=tok.text, args=tuple(args),
                            loc=_loc(tok))
            return Ident(name=tok.text)
        raise CParseError(f"line {tok.line}: unexpected token "
                          f"{tok.text!r}")


def parse_source(source: str) -> Program:
    """Parse C-subset source text into a :class:`Program`.

    Top-level ``void`` function definitions collect into
    ``Program.functions``; every other top-level statement belongs to
    the implicit main body, exactly as before the subset grew
    functions.
    """
    tokens, raw_defines = tokenize(source)
    defines = []
    for name, value in raw_defines:
        try:
            defines.append((name, parse_number(value)))
        except ValueError:
            raise CParseError(f"#define {name} must be numeric in this "
                              "subset")
    parser = _Parser(tokens)
    stmts = []
    functions = []
    seen = set()
    while parser.peek() is not None:
        if parser.at_funcdef():
            func = parser.parse_funcdef()
            if func.name in seen:
                raise CParseError(
                    f"function {func.name!r} is defined twice")
            seen.add(func.name)
            functions.append(func)
        else:
            stmts.append(parser.parse_stmt())
    return Program(defines=tuple(defines), stmts=tuple(stmts),
                   functions=tuple(functions))
