"""Command-line front end for the offload-safety analyzer.

Usage::

    python -m repro.compiler.analyze prog.c [prog2.c ...] [--json]

Each file is parsed, recognized, and run through the full rule battery
(:mod:`repro.compiler.analysis`). Findings print one per line in the
classic ``file:line:col: severity: CODE title: message`` shape, or as
one JSON report per file with ``--json``. The exit status is 1 when
any file produced an error-severity finding (or failed to compile at
all), 0 otherwise — so the analyzer can gate CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.compiler.analysis.rules import analyze_source
from repro.compiler.cast import CParseError
from repro.compiler.diagnostics import (Diagnostic, DiagnosticReport,
                                        Severity)
from repro.compiler.errors import CompilerError


def _report_for(source: str) -> DiagnosticReport:
    """Analyze one source text, folding front-end failures into the
    report as diagnostics instead of tracebacks."""
    try:
        return analyze_source(source).report
    except CompilerError as exc:
        report = DiagnosticReport()
        report.add(exc.diagnostic)
        return report
    except CParseError as exc:
        report = DiagnosticReport()
        report.add(Diagnostic(code="MEA010", severity=Severity.ERROR,
                              message=str(exc)))
        return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compiler.analyze",
        description="Prove offload safety of C-subset programs.")
    parser.add_argument("files", nargs="+",
                        help="C-subset source files to analyze")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON report per file")
    args = parser.parse_args(argv)

    failed = False
    json_out = []
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            failed = True
            continue
        report = _report_for(source)
        if report.has_errors:
            failed = True
        if args.json:
            payload = report.to_dict()
            payload["file"] = path
            json_out.append(payload)
        else:
            for diag in report:
                print(f"{path}:{diag.format()}")
            if not len(report):
                print(f"{path}: clean (0 diagnostics)")
    if args.json:
        print(json.dumps(json_out, indent=2, sort_keys=True))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
