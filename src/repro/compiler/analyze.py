"""Command-line front end for the offload-safety analyzer.

Usage::

    python -m repro.compiler.analyze prog.c [prog2.c ...] [--json]
    python -m repro.compiler.analyze prog.c --sarif > report.sarif
    python -m repro.compiler.analyze prog.c --rewrite [--json]

Each file is parsed, recognized, and run through the full rule battery
(:mod:`repro.compiler.analysis`). Findings print one per line in the
classic ``file:line:col: severity: CODE title: message`` shape, as one
JSON report per file with ``--json`` (schema ``mea-analysis/v1``,
unchanged), or as a single SARIF 2.1.0 log with ``--sarif`` for code
scanners and CI annotation. Both machine formats also carry the
rewrite-safety certificates of every step that stayed offloaded
(``certificates`` key / SARIF run ``properties.certificates``). With
``--rewrite`` the verified schedule rewrite engine
(:mod:`repro.compiler.rewrite`) runs over the certified schedule and
its decision log (MEA018 applied / MEA019 rejected) joins the
diagnostics, the JSON payload (``rewrites`` key — only when the flag
is given, so the ``mea-analysis/v1`` schema is unchanged without it)
and the SARIF run's ``properties.rewrites`` bag. The exit status is 1
when any file produced an error-severity finding (or failed to
compile at all), 0 otherwise — so the analyzer can gate CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.compiler.analysis.certificates import SafetyCertificate
from repro.compiler.analysis.rules import analyze_source
from repro.compiler.cast import CParseError
from repro.compiler.diagnostics import (CODE_TITLES, Diagnostic,
                                        DiagnosticReport, Severity)
from repro.compiler.errors import CompilerError

#: SARIF levels per diagnostic severity.
_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning",
                 Severity.INFO: "note"}


def _report_for(source: str, rewrite: bool = False
                ) -> Tuple[DiagnosticReport,
                           Tuple[SafetyCertificate, ...], Tuple]:
    """Analyze one source text, folding front-end failures into the
    report as diagnostics instead of tracebacks. Returns the sorted
    report, the safety certificates of every offloaded step, and the
    rewrite decision log (empty without ``--rewrite``)."""
    try:
        result = analyze_source(source, rewrite=rewrite)
        return (result.report.sort(), result.certificates,
                result.rewrites)
    except CompilerError as exc:
        report = DiagnosticReport()
        report.add(exc.diagnostic)
        return report, (), ()
    except CParseError as exc:
        report = DiagnosticReport()
        report.add(Diagnostic(code="MEA013", severity=Severity.ERROR,
                              message=str(exc)))
        return report, (), ()


def _sarif_result(path: str, diag: Diagnostic) -> Dict[str, object]:
    region: Dict[str, object] = {}
    if diag.loc is not None:
        region["startLine"] = diag.loc.line
        if diag.loc.col:
            region["startColumn"] = diag.loc.col
    message = diag.message
    if diag.chain:
        message += " (via " + " -> ".join(("main",) + diag.chain) + ")"
    result: Dict[str, object] = {
        "ruleId": diag.code,
        "level": _SARIF_LEVELS[diag.severity],
        "message": {"text": message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": path},
                **({"region": region} if region else {}),
            },
        }],
    }
    if diag.buffers:
        result["properties"] = {"buffers": list(diag.buffers)}
    return result


def _sarif_log(per_file: List) -> Dict[str, object]:
    """One SARIF 2.1.0 run covering every analyzed file.

    Per-file rewrite-safety certificates ride in the run's
    ``properties.certificates`` bag (SARIF has no first-class slot for
    proofs of *absence* of problems); with ``--rewrite`` the engine's
    decision log joins it as ``properties.rewrites``.
    """
    rules = [{"id": code,
              "shortDescription": {"text": title}}
             for code, title in sorted(CODE_TITLES.items())]
    results: List[Dict[str, object]] = []
    certificates: Dict[str, List[Dict[str, object]]] = {}
    rewrites: Dict[str, List[Dict[str, object]]] = {}
    any_rewrites = False
    for path, report, certs, decisions in per_file:
        results.extend(_sarif_result(path, d) for d in report)
        if certs:
            certificates[path] = [c.to_dict() for c in certs]
        if decisions:
            any_rewrites = True
            rewrites[path] = [d.to_dict() for d in decisions]
    properties: Dict[str, object] = {"certificates": certificates}
    if any_rewrites:
        properties["rewrites"] = rewrites
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "mea-analyze",
                "informationUri": "https://example.invalid/mealib",
                "rules": rules,
            }},
            "results": results,
            "properties": properties,
        }],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compiler.analyze",
        description="Prove offload safety of C-subset programs.")
    parser.add_argument("files", nargs="+",
                        help="C-subset source files to analyze")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON report per file")
    parser.add_argument("--sarif", action="store_true",
                        help="emit a single SARIF 2.1.0 log for all "
                             "files")
    parser.add_argument("--rewrite", default=False,
                        action=argparse.BooleanOptionalAction,
                        help="run the verified schedule rewrite "
                             "engine (fuse/reorder/split) and report "
                             "its decisions (MEA018/MEA019)")
    args = parser.parse_args(argv)
    if args.json and args.sarif:
        parser.error("--json and --sarif are mutually exclusive")

    failed = False
    json_out = []
    sarif_in: List = []
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            failed = True
            continue
        report, certs, decisions = _report_for(source,
                                               rewrite=args.rewrite)
        if report.has_errors:
            failed = True
        if args.json:
            payload = report.to_dict()
            payload["file"] = path
            payload["certificates"] = [c.to_dict() for c in certs]
            if args.rewrite:
                payload["rewrites"] = [d.to_dict() for d in decisions]
            json_out.append(payload)
        elif args.sarif:
            sarif_in.append((path, report, certs, decisions))
        else:
            for diag in report:
                print(f"{path}:{diag.format()}")
            if not len(report):
                print(f"{path}: clean (0 diagnostics)")
    if args.json:
        print(json.dumps(json_out, indent=2, sort_keys=True))
    elif args.sarif:
        print(json.dumps(_sarif_log(sarif_in), indent=2,
                         sort_keys=True))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
