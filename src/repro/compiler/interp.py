"""Program interpreters: original (host library) and translated (MEALib).

Two execution paths for the same legacy source:

* :func:`run_original` walks the AST directly, executing every library
  call (including each of the millions inside an OpenMP nest) with the
  software library on plain numpy buffers, and times the run with the
  host CPU model — the paper's optimised MKL+OpenMP baseline;
* :func:`run_translated` runs the compiler, allocates buffers through
  ``mealib_mem_alloc``, executes host (compute-bounded) calls on the
  host model, and lowers each descriptor group to TDL + parameter files
  executed through the runtime and configuration unit.

The two paths share nothing at execution time except the parsed AST, so
matching outputs validate the paper's claim that translated legacy code
computes the same results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Union

import numpy as np

from repro.accel.base import pack_strides
from repro.compiler.cast import (Assign, Call, Expr, ExprStmt, For,
                                 Ident, Program, Stmt, VarDecl)
from repro.compiler.inline import inline_body
from repro.compiler.recognizer import (AccelCallStep, AllocStep, FreeStep,
                                       HostCallStep, PlanDestroyStep,
                                       RecognizerError)
from repro.compiler.passes import ChainStep, DescriptorStep
from repro.compiler.rewrite.ir import FusedStep
from repro.compiler.semantics import CompileEnv, SemanticError
from repro.compiler.translate import (HOST_CALL_OVERHEAD_S,
                                      TranslatedProgram, host_step_profile,
                                      step_profile, translate)
from repro.core.system import MealibSystem
from repro.core.tdl import ParamStore
from repro.host.cpu import CpuModel
from repro.host.platforms import haswell
from repro.metrics import ExecResult, ZERO
from repro.mkl import blas, fftw
from repro.mkl.resample import interpolate_1d
from repro.mkl.sparse import CsrMatrix, scsrgemv
from repro.mkl.transpose import simatcopy, somatcopy

_DTYPES = {"float": np.float32, "double": np.float64,
           "complex": np.complex64, "int": np.int32, "long": np.int64,
           "size_t": np.int64, "char": np.uint8}


class InterpError(Exception):
    """Raised on runtime problems in either interpreter."""


@dataclass(frozen=True)
class ArrayRef:
    """A pointer value: a flat numpy array plus an element offset."""

    array: np.ndarray
    offset: int

    def tail(self) -> np.ndarray:
        return self.array[self.offset:]

    def take(self, n: int, stride: int = 1) -> np.ndarray:
        if stride == 1:
            return self.array[self.offset: self.offset + n]
        end = self.offset + 1 + (n - 1) * stride
        return self.array[self.offset: end: stride]


@dataclass
class RunOutcome:
    """Result of executing a program end to end."""

    result: ExecResult
    buffers: Dict[str, np.ndarray]
    library_calls: int = 0
    descriptors: int = 0


# -- shared functional dispatch -------------------------------------------------

def _as_csr(m: int, data: ArrayRef, ia: ArrayRef, ja: ArrayRef
            ) -> CsrMatrix:
    indptr = ia.take(m + 1).astype(np.int64)
    nnz = int(indptr[-1])
    return CsrMatrix(indptr=indptr, indices=ja.take(nnz).astype(np.int64),
                     data=data.take(nnz), shape=(m, m))


def _call_function(env: CompileEnv, name: str, args: List) -> None:
    """Execute one library call functionally. ``args`` are evaluated:
    scalars as numbers, pointers as ArrayRefs, plans as PlanSpec."""
    if name == "cblas_saxpy":
        n, alpha, x, incx, y, incy = args
        blas.saxpy(n, alpha, x.tail(), incx, y.tail(), incy)
    elif name == "cblas_sdot_sub":
        n, x, incx, y, incy, out = args
        out.array[out.offset] = blas.sdot(n, x.tail(), incx, y.tail(),
                                          incy)
    elif name == "cblas_cdotc_sub":
        n, x, incx, y, incy, out = args
        out.array[out.offset] = blas.cdotc(n, x.tail(), incx, y.tail(),
                                           incy)
    elif name == "cblas_sgemv":
        _, _, m, n, alpha, a, lda, x, incx, beta, y, incy = args
        blas.sgemv(False, m, n, alpha, a.tail(), lda, x.tail(), incx,
                   beta, y.tail(), incy)
    elif name == "mkl_scsrgemv":
        m, a, ia, ja, x, y = args
        scsrgemv(_as_csr(m, a, ia, ja), x.tail(), y.tail())
    elif name == "dfsInterpolate1D":
        blocks, n_in, knots, series, n_out, sites, out = args
        kn = knots.take(n_in).astype(np.float64)
        for b in range(blocks):
            src = series.array[series.offset + b * n_in:
                               series.offset + (b + 1) * n_in]
            st = sites.array[sites.offset + b * n_out:
                             sites.offset + (b + 1) * n_out]
            out.array[out.offset + b * n_out:
                      out.offset + (b + 1) * n_out] = interpolate_1d(
                kn, src, st.astype(np.float64))
    elif name == "mkl_simatcopy":
        rows, cols, alpha, ab = args
        simatcopy(rows, cols, alpha, ab.tail())
    elif name == "mkl_somatcopy":
        rows, cols, alpha, a, b = args
        somatcopy(rows, cols, alpha, a.tail(), b.tail())
    elif name == "fftwf_execute":
        (plan_spec, src_ref, dst_ref) = args
        dims = [fftw.IoDim(d.n, d.istride, d.ostride)
                for d in plan_spec.dims]
        howmany = [fftw.IoDim(d.n, d.istride, d.ostride)
                   for d in plan_spec.howmany]
        plan = fftw.plan_guru_dft(plan_spec.rank, dims or None,
                                  len(howmany), howmany, src_ref.tail(),
                                  dst_ref.tail(), plan_spec.sign)
        fftw.execute(plan)
    elif name == "cblas_cherk":
        n, k, alpha, a, beta, c = args
        blas.cherk(False, n, k, alpha, a.take(n * k), beta,
                   c.take(n * n))
    elif name == "cblas_ctrsm_lower":
        n, m, a, b = args
        blas.ctrsm_left_lower(n, m, 1.0, a.take(n * n), b.take(n * m))
    elif name == "cblas_ctrsm_upper":
        n, m, a, b = args
        blas.ctrsm_left_upper(n, m, 1.0, a.take(n * n), b.take(n * m))
    elif name == "cpotrf_lower":
        n, a = args
        blas.cpotrf_lower(n, a.take(n * n))
    else:
        raise InterpError(f"no functional implementation for {name!r}")


#: Argument kinds per function: 'p' pointer, 's' scalar, 'plan' plan.
_SIGNATURES = {
    "cblas_saxpy": "sspsps",
    "cblas_sdot_sub": "spspsp",
    "cblas_cdotc_sub": "spspsp",
    # order trans m n alpha a lda x incx beta y incy
    "cblas_sgemv": "ssssspspssps",
    "mkl_scsrgemv": "sppppp",
    # blocks n_in knots series n_out sites out
    "dfsInterpolate1D": "ssppspp",
    "mkl_simatcopy": "sssp",
    "mkl_somatcopy": "ssspp",
    "fftwf_execute": "l",
    "cblas_cherk": "ssspsp",
    "cblas_ctrsm_lower": "sspp",
    "cblas_ctrsm_upper": "sspp",
    "cpotrf_lower": "sp",
}


# -- the original-program interpreter ---------------------------------------------

class OriginalInterpreter:
    """Direct AST execution with the software library."""

    def __init__(self, program: Program, env: CompileEnv,
                 inputs: Optional[Dict[str, np.ndarray]] = None):
        self.program = program
        self.env = env
        self.inputs = inputs or {}
        self.arrays: Dict[str, np.ndarray] = {}
        self.bindings: Dict[str, int] = {}
        self.functions = program.function_map()
        self._call_stack: List[str] = []
        self._inline_count = 0

    # -- buffers -------------------------------------------------------------

    def _materialize(self, name: str) -> None:
        info = self.env.buffers[name]
        dtype = _DTYPES[info.elem_type]
        arr = np.zeros(info.count, dtype=dtype)
        given = self.inputs.get(name)
        if given is not None:
            flat = np.asarray(given, dtype=dtype).reshape(-1)
            arr[: len(flat)] = flat
        self.arrays[name] = arr

    # -- evaluation ------------------------------------------------------------

    def _eval_scalar(self, expr: Expr) -> Union[int, float]:
        try:
            return self.env.eval_const(expr)
        except SemanticError:
            pass
        affine = self.env.affine_expr(expr)
        return affine.evaluate(self.bindings)

    def _eval_pointer(self, expr: Expr) -> ArrayRef:
        buf, offset = self.env.buffer_address(expr)
        info = self.env.buffers[buf]
        byte_off = offset.evaluate(self.bindings)
        if buf not in self.arrays:
            self._materialize(buf)
        return ArrayRef(array=self.arrays[buf],
                        offset=byte_off // info.elem_size)

    def _eval_args(self, name: str, raw_args: Sequence[Expr]) -> List:
        sig = _SIGNATURES[name]
        if len(sig) != len(raw_args):
            raise InterpError(
                f"{name} expects {len(sig)} arguments, got "
                f"{len(raw_args)}")
        out: List = []
        for kind, expr in zip(sig, raw_args):
            if kind == "s":
                out.append(self._eval_scalar(expr))
            elif kind == "p":
                out.append(self._eval_pointer(expr))
            elif kind == "l":
                if not isinstance(expr, Ident) or \
                        expr.name not in self.env.plans:
                    raise InterpError("fftwf_execute needs a plan")
                plan = self.env.plans[expr.name]
                out.append(plan)
                src_info = self.env.buffers[plan.src]
                dst_info = self.env.buffers[plan.dst]
                if plan.src not in self.arrays:
                    self._materialize(plan.src)
                if plan.dst not in self.arrays:
                    self._materialize(plan.dst)
                out.append(ArrayRef(
                    self.arrays[plan.src],
                    plan.src_offset // src_info.elem_size))
                out.append(ArrayRef(
                    self.arrays[plan.dst],
                    plan.dst_offset // dst_info.elem_size))
        return out

    # -- statements ------------------------------------------------------------

    def execute(self) -> Dict[str, np.ndarray]:
        self._exec_block(self.program.stmts)
        # materialise any declared-but-untouched buffers for inspection
        for name in self.env.buffers:
            if name not in self.arrays:
                self._materialize(name)
        return self.arrays

    def _exec_block(self, stmts: Sequence[Stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl):
            if stmt.name in self.env.buffers and not stmt.pointer:
                self._materialize(stmt.name)
            return
        if isinstance(stmt, Assign):
            if isinstance(stmt.value, Call):
                if stmt.value.func == "malloc" \
                        and isinstance(stmt.target, Ident):
                    self._materialize(stmt.target.name)
                    return
                if stmt.value.func == "fftwf_plan_guru_dft":
                    return                     # recorded by the compiler
            raise InterpError(f"unsupported assignment {stmt!r}")
        if isinstance(stmt, ExprStmt) and isinstance(stmt.expr, Call):
            call = stmt.expr
            if call.func in self.functions:
                self._exec_user_call(call)
                return
            if call.func in ("free", "fftwf_destroy_plan"):
                return                          # buffers kept for output
            self._eval_call(call)
            return
        if isinstance(stmt, For):
            bound = int(self._eval_scalar(stmt.bound))
            start = int(self._eval_scalar(stmt.start))
            saved = self.bindings.get(stmt.var)
            for value in range(start, bound, stmt.step):
                self.bindings[stmt.var] = value
                self._exec_block(stmt.body)
            if saved is None:
                self.bindings.pop(stmt.var, None)
            else:
                self.bindings[stmt.var] = saved
            return
        raise InterpError(f"unsupported statement {stmt!r}")

    def _exec_user_call(self, call: Call) -> None:
        """Execute a user-defined function by splicing its body in.

        Mirrors the recognizer's inlining (same α-renaming scheme), so
        the original interpreter computes exactly what the translated
        schedule was built from.
        """
        if call.func in self._call_stack:
            path = " -> ".join(self._call_stack + [call.func])
            raise InterpError(f"recursive call chain {path}")
        self._inline_count += 1
        body = inline_body(self.functions[call.func], call.args,
                           suffix=f"r{self._inline_count}")
        self._call_stack.append(call.func)
        try:
            self._exec_block(body)
        finally:
            self._call_stack.pop()

    def _eval_call(self, call: Call) -> None:
        _call_function(self.env, call.func,
                       self._eval_args(call.func, call.args))


def _looped_step_buffers(step: object, env: CompileEnv) -> int:
    """Distinct bytes a looped call site touches across all trips."""
    names: Set[str] = set()
    if isinstance(step, AccelCallStep):
        names.update(step.in_bufs)
        names.update(step.out_bufs)
    return sum(env.buffers[n].total_bytes for n in names)


def _original_timing(translated: TranslatedProgram,
                     host: CpuModel) -> ExecResult:
    """Baseline timing: every call site on the host library.

    Non-looped calls run the roofline per call. OpenMP nests of small
    calls behave differently on a real machine: operands stay cached
    across iterations (memory time is bounded by the nest's distinct
    working set, not per-call traffic x trips) and per-call dispatch
    overhead is amortised across the worker threads. Both effects are
    modelled; without them the baseline would be unrealistically slow
    and MEALib's STAP gains would be inflated far beyond the paper's.
    """
    total = ZERO
    spec = host.spec
    for step in translated.schedule.steps:
        if not isinstance(step, (AccelCallStep, HostCallStep)):
            continue
        profile, calls = step_profile(step, translated.env)
        if calls == 1 or not getattr(step, "trips", ()):
            per_call = host.run_profile(profile)
            overhead_t = HOST_CALL_OVERHEAD_S
            total = total.plus(ExecResult(
                time=per_call.time * calls + overhead_t,
                energy=per_call.energy * calls
                + overhead_t * per_call.power))
            continue
        threads = min(spec.threads_used or spec.cores, spec.cores)
        rate = (threads * spec.freq_hz * spec.flops_per_cycle
                * spec.compute_eff[profile.pattern])
        t_compute = calls * profile.flops / rate if profile.flops else 0.0
        ws = _looped_step_buffers(step, translated.env)
        traffic = ws * (1 + (spec.rfo_factor - 1) * 0.5)
        t_memory = traffic / (spec.peak_bw * spec.bw_eff[profile.pattern])
        t_overhead = calls * HOST_CALL_OVERHEAD_S / threads
        time = max(t_compute, t_memory, t_overhead)
        power = spec.p_idle + spec.p_core * threads + spec.p_dram
        total = total.plus(ExecResult(time=time, energy=power * time))
    return total


def run_original(source: Union[str, Program],
                 host: Optional[CpuModel] = None,
                 inputs: Optional[Dict[str, np.ndarray]] = None
                 ) -> RunOutcome:
    """Execute the legacy program as-is on the host library."""
    host = host if host is not None else haswell()
    translated = translate(source)
    interp = OriginalInterpreter(translated.source_program,
                                 translated.env, inputs)
    buffers = interp.execute()
    timing = _original_timing(translated, host)
    return RunOutcome(result=timing, buffers=buffers,
                      library_calls=translated.original_call_count())


# -- the translated-program runner ------------------------------------------------

class TranslatedRunner:
    """Executes compiler output against a MealibSystem."""

    def __init__(self, translated: TranslatedProgram,
                 system: Optional[MealibSystem] = None,
                 inputs: Optional[Dict[str, np.ndarray]] = None,
                 functional: bool = True):
        self.t = translated
        self.system = system if system is not None else MealibSystem()
        self.inputs = inputs or {}
        self.functional = functional
        self.pa_of: Dict[str, int] = {}
        self.views: Dict[str, np.ndarray] = {}
        self._handles: Dict[str, object] = {}

    # -- buffers -------------------------------------------------------------

    def _alloc(self, name: str) -> None:
        info = self.t.env.buffers[name]
        dtype = _DTYPES[info.elem_type]
        buf = self.system.runtime.mem_alloc(max(info.total_bytes, 1))
        view = self.system.space.va_ndarray(buf, dtype, (info.count,))
        given = self.inputs.get(name)
        if self.functional and given is not None:
            flat = np.asarray(given, dtype=dtype).reshape(-1)
            view[: len(flat)] = flat
        self.pa_of[name] = buf.pa
        self.views[name] = view
        self._handles[name] = buf

    def _ensure(self, name: str) -> None:
        if name not in self.pa_of:
            self._alloc(name)

    # -- execution ------------------------------------------------------------

    def run(self) -> RunOutcome:
        # static arrays exist from program start
        for name, info in self.t.env.buffers.items():
            if not info.heap:
                self._alloc(name)
        descriptors = 0
        for item in self.t.items:
            if isinstance(item, AllocStep):
                self._ensure(item.buffer)
            elif isinstance(item, (FreeStep, PlanDestroyStep)):
                pass                        # keep contents for inspection
            elif isinstance(item, HostCallStep):
                self._run_host(item)
            elif isinstance(item, DescriptorStep):
                self._run_descriptor(item)
                descriptors += 1
            else:
                raise InterpError(f"unknown schedule item {item!r}")
        total = self.system.total()
        buffers = ({name: view.copy() for name, view in
                    self.views.items()} if self.functional else {})
        return RunOutcome(result=total, buffers=buffers,
                          library_calls=self.t.original_call_count(),
                          descriptors=descriptors)

    # -- host calls -------------------------------------------------------------

    def _run_host(self, step: HostCallStep) -> None:
        env = self.t.env
        for name in set(self._pointer_buffers(step)):
            self._ensure(name)
        if self.functional:
            interp = OriginalInterpreter(self.t.source_program, env)
            interp.arrays = self.views      # run over the unified space
            trips = step.trips or ()
            for combo in itertools.product(*[range(t) for t in trips]):
                interp.bindings = dict(zip(step.loop_vars, combo))
                _call_function(env, step.func,
                               interp._eval_args(step.func, step.args))
        profile = host_step_profile(step, env)
        per_call = self.system.host.run_profile(profile)
        calls = step.calls
        overhead_t = HOST_CALL_OVERHEAD_S * calls
        self.system.runtime.log_host(step.func, ExecResult(
            time=per_call.time * calls + overhead_t,
            energy=per_call.energy * calls + overhead_t * per_call.power))

    def _pointer_buffers(self, step: HostCallStep) -> Iterator[str]:
        sig = _SIGNATURES[step.func]
        for kind, expr in zip(sig, step.args):
            if kind == "p":
                name, _ = self.t.env.buffer_address(expr)
                yield name
            elif kind == "l":
                # demoted fftwf_execute: the plan's buffers are touched
                if isinstance(expr, Ident) \
                        and expr.name in self.t.env.plans:
                    plan = self.t.env.plans[expr.name]
                    yield plan.src
                    yield plan.dst

    # -- descriptors ---------------------------------------------------------------

    def _run_descriptor(self, group: DescriptorStep) -> None:
        store = ParamStore()
        tdl_lines: List[str] = []
        touched: Set[str] = set()
        counter = 0

        def add_comp(step: AccelCallStep, looped: bool) -> str:
            nonlocal counter
            for buf in step.in_bufs + step.out_bufs:
                self._ensure(buf)
                touched.add(buf)
            fname = f"p{counter}.para"
            counter += 1
            base = step.proto.instantiate(
                self.pa_of,
                {v: 0 for v in step.loop_vars})
            blob = base.pack()
            if looped:
                table = step.proto.stride_table(step.loop_vars,
                                                step.trips)
                blob += pack_strides(step.proto.params_type, table)
            store.add(fname, blob)
            return f"COMP {step.accel} {fname}"

        for item in group.items:
            if isinstance(item, ChainStep):
                comps = " ".join(add_comp(s, False) for s in item.steps)
                tdl_lines.append(f"PASS {{ {comps} }}")
            elif isinstance(item, FusedStep):
                # a verified fusion: one multi-COMP PASS, re-armed by
                # LOOP when the members are loop-compacted (each COMP
                # keeps its own stride table)
                looped = item.looped
                comps = " ".join(add_comp(s, looped)
                                 for s in item.steps)
                if looped:
                    tdl_lines.append(f"LOOP {item.iterations} "
                                     f"{{ PASS {{ {comps} }} }}")
                else:
                    tdl_lines.append(f"PASS {{ {comps} }}")
            elif isinstance(item, AccelCallStep):
                if item.looped:
                    comp = add_comp(item, True)
                    tdl_lines.append(
                        f"LOOP {item.calls} {{ PASS {{ {comp} }} }}")
                else:
                    comp = add_comp(item, False)
                    tdl_lines.append(f"PASS {{ {comp} }}")
            else:
                raise InterpError(f"bad descriptor item {item!r}")
        working = sum(self.t.env.buffers[b].total_bytes for b in touched)
        tdl = "\n".join(tdl_lines) + "\n"
        plan = self.system.runtime.acc_plan(tdl, store,
                                            in_size=working, out_size=0)
        self.system.runtime.acc_execute(plan, functional=self.functional)
        self.system.runtime.acc_destroy(plan)


def run_translated(source: Union[str, Program, TranslatedProgram],
                   system: Optional[MealibSystem] = None,
                   inputs: Optional[Dict[str, np.ndarray]] = None,
                   functional: bool = True) -> RunOutcome:
    """Compile the legacy program and execute it on MEALib.

    ``functional=False`` runs the timing/energy models only — used for
    paper-scale problem sizes whose numerics would be wasteful to
    materialise (the sampled-window DRAM methodology applies
    regardless).
    """
    translated = source if isinstance(source, TranslatedProgram) \
        else translate(source)
    runner = TranslatedRunner(translated, system, inputs,
                              functional=functional)
    return runner.run()


def baseline_timing(source: Union[str, Program, TranslatedProgram],
                    host: Optional[CpuModel] = None) -> RunOutcome:
    """Time the original program on the host library without running
    its numerics (for paper-scale problem sizes)."""
    host = host if host is not None else haswell()
    translated = source if isinstance(source, TranslatedProgram) \
        else translate(source)
    return RunOutcome(result=_original_timing(translated, host),
                      buffers={},
                      library_calls=translated.original_call_count())
